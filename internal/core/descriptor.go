// Package core implements the paper's primary contribution: the NDP
// descriptor and the near-data page transforms (selection, projection,
// and aggregation) that Page Stores apply to InnoDB pages, plus the
// merge/completion helpers the frontend uses for ambiguous records and
// skipped pages.
//
// The descriptor is "a data structure called an 'NDP descriptor' [that]
// contains the number and data types of the index columns ...; the
// columns to be projected, if any; the encoded filtering predicates in
// the LLVM IR format, if any; the aggregation functions to call and the
// GROUP BY columns, if any; a transaction ID that represents an MVCC
// read-view low watermark" (§IV-C1). Page Stores receive it as an opaque
// byte stream and decode it through a DBMS-specific plugin (§IV-D).
package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"taurus/internal/core/ir"
	"taurus/internal/types"
)

// AggFn enumerates aggregate functions Page Stores can compute. AVG never
// appears: the optimizer decomposes it into SUM and COUNT, "AVG is
// computed by keeping SUM and COUNT values" (§III).
type AggFn uint8

const (
	// AggCountStar counts rows (COUNT(*)).
	AggCountStar AggFn = iota
	// AggCount counts non-NULL argument values (COUNT(col)).
	AggCount
	// AggSum sums the argument.
	AggSum
	// AggMin / AggMax track the extreme argument value.
	AggMin
	AggMax
)

func (f AggFn) String() string {
	switch f {
	case AggCountStar:
		return "COUNT(*)"
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFn(%d)", uint8(f))
	}
}

// AggSpec describes one pushed-down aggregate.
type AggSpec struct {
	Fn AggFn
	// ArgCol is the argument column ordinal in the NDP-processed row
	// layout (post-projection if projection is enabled), or -1 for
	// COUNT(*) and for IR-computed arguments.
	ArgCol int32
	// ArgIR optionally holds an encoded IR program computing the
	// argument from the row, for expression aggregates like
	// SUM(l_extendedprice * (1 - l_discount)) in TPC-H Q1/Q6.
	ArgIR []byte
}

// Descriptor carries everything a Page Store needs to NDP-process pages
// for one table access. A separate descriptor exists per table per query
// block.
type Descriptor struct {
	// IndexID identifies the index whose pages this descriptor applies
	// to; requests for other indexes are rejected.
	IndexID uint64
	// Cols lists the column kinds of the index row layout, in order;
	// together with FixedLens this is the "number and data types of the
	// index columns and the lengths of the fixed-length columns".
	Cols []types.Kind
	// FixedLens holds per-column fixed lengths (0 = variable/non-string).
	FixedLens []uint16
	// Projection lists the retained column ordinals, ascending; empty
	// means no projection. The optimizer always includes the primary
	// key and any columns needed downstream (§V-A).
	Projection []uint16
	// Predicate is the encoded IR program for the pushed filter, or
	// empty. Ordinals refer to the full (pre-projection) row layout.
	Predicate []byte
	// Aggs lists pushed aggregates; empty means no NDP aggregation.
	Aggs []AggSpec
	// GroupBy lists grouping column ordinals (post-projection layout);
	// empty with non-empty Aggs means scalar aggregation, which also
	// enables cross-page aggregation within a batch read (§V-C).
	GroupBy []uint16
	// LowWatermark is the MVCC read-view low watermark: records with
	// TrxID < LowWatermark are visible; others are ambiguous and must
	// be returned to the frontend unprocessed. "A complete list of
	// active transactions is not included to reduce CPU overhead in
	// Page Stores" (§IV-C1).
	LowWatermark uint64
}

// HasProjection reports whether column projection was pushed down.
func (d *Descriptor) HasProjection() bool { return len(d.Projection) > 0 }

// HasPredicate reports whether filtering was pushed down.
func (d *Descriptor) HasPredicate() bool { return len(d.Predicate) > 0 }

// HasAggregation reports whether aggregation was pushed down.
func (d *Descriptor) HasAggregation() bool { return len(d.Aggs) > 0 }

// RowSchema materializes the full row schema described by Cols.
func (d *Descriptor) RowSchema() *types.Schema {
	cols := make([]types.Column, len(d.Cols))
	for i, k := range d.Cols {
		cols[i] = types.Column{Name: fmt.Sprintf("c%d", i), Kind: k, FixedLen: int(d.FixedLens[i])}
	}
	return types.NewSchema(cols...)
}

// OutputSchema is the schema of rows in NDP-processed records: the
// projected schema if projection is enabled, else the full row schema.
func (d *Descriptor) OutputSchema() *types.Schema {
	full := d.RowSchema()
	if !d.HasProjection() {
		return full
	}
	ords := make([]int, len(d.Projection))
	for i, o := range d.Projection {
		ords[i] = int(o)
	}
	return full.Project(ords)
}

const descMagic = "TNDP"

// Encode serializes the descriptor to the opaque byte stream shipped with
// NDP I/O requests.
func (d *Descriptor) Encode() []byte {
	buf := make([]byte, 0, 64+len(d.Predicate))
	buf = append(buf, descMagic...)
	buf = binary.AppendUvarint(buf, d.IndexID)
	buf = binary.AppendUvarint(buf, uint64(len(d.Cols)))
	for i, k := range d.Cols {
		buf = append(buf, byte(k))
		buf = binary.AppendUvarint(buf, uint64(d.FixedLens[i]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.Projection)))
	for _, o := range d.Projection {
		buf = binary.AppendUvarint(buf, uint64(o))
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.Predicate)))
	buf = append(buf, d.Predicate...)
	buf = binary.AppendUvarint(buf, uint64(len(d.Aggs)))
	for _, a := range d.Aggs {
		buf = append(buf, byte(a.Fn))
		buf = binary.AppendVarint(buf, int64(a.ArgCol))
		buf = binary.AppendUvarint(buf, uint64(len(a.ArgIR)))
		buf = append(buf, a.ArgIR...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.GroupBy)))
	for _, g := range d.GroupBy {
		buf = binary.AppendUvarint(buf, uint64(g))
	}
	buf = binary.AppendUvarint(buf, d.LowWatermark)
	return buf
}

// DecodeDescriptor parses and sanity-checks an encoded descriptor. This
// is what the Page Store NDP plugin runs (and caches) on first sight of a
// descriptor.
func DecodeDescriptor(buf []byte) (*Descriptor, error) {
	if len(buf) < 4 || string(buf[:4]) != descMagic {
		return nil, fmt.Errorf("core: bad descriptor magic")
	}
	r := &descReader{buf: buf, off: 4}
	d := &Descriptor{}
	d.IndexID = r.uvarint()
	nCols := r.uvarint()
	if nCols > 4096 {
		return nil, fmt.Errorf("core: implausible column count %d", nCols)
	}
	d.Cols = make([]types.Kind, nCols)
	d.FixedLens = make([]uint16, nCols)
	for i := range d.Cols {
		d.Cols[i] = types.Kind(r.byte())
		d.FixedLens[i] = uint16(r.uvarint())
	}
	nProj := r.uvarint()
	if nProj > nCols {
		return nil, fmt.Errorf("core: projection wider than row")
	}
	d.Projection = make([]uint16, nProj)
	for i := range d.Projection {
		o := r.uvarint()
		if o >= nCols {
			return nil, fmt.Errorf("core: projection ordinal %d out of range", o)
		}
		d.Projection[i] = uint16(o)
	}
	predLen := r.uvarint()
	d.Predicate = r.bytes(int(predLen))
	nAggs := r.uvarint()
	if nAggs > 256 {
		return nil, fmt.Errorf("core: implausible aggregate count %d", nAggs)
	}
	d.Aggs = make([]AggSpec, nAggs)
	outCols := nCols
	if nProj > 0 {
		outCols = nProj
	}
	for i := range d.Aggs {
		d.Aggs[i].Fn = AggFn(r.byte())
		if d.Aggs[i].Fn > AggMax {
			return nil, fmt.Errorf("core: unknown aggregate fn %d", d.Aggs[i].Fn)
		}
		d.Aggs[i].ArgCol = int32(r.varint())
		if int(d.Aggs[i].ArgCol) >= int(outCols) {
			return nil, fmt.Errorf("core: aggregate arg ordinal out of range")
		}
		irLen := r.uvarint()
		d.Aggs[i].ArgIR = r.bytes(int(irLen))
	}
	nGroup := r.uvarint()
	if nGroup > outCols {
		return nil, fmt.Errorf("core: group-by wider than output row")
	}
	d.GroupBy = make([]uint16, nGroup)
	for i := range d.GroupBy {
		g := r.uvarint()
		if g >= outCols {
			return nil, fmt.Errorf("core: group-by ordinal out of range")
		}
		d.GroupBy[i] = uint16(g)
	}
	d.LowWatermark = r.uvarint()
	if r.err != nil {
		return nil, fmt.Errorf("core: corrupt descriptor: %w", r.err)
	}
	// Validate embedded IR programs eagerly so a bad program is caught
	// at decode time, not mid-scan.
	if len(d.Predicate) > 0 {
		if _, err := ir.Decode(d.Predicate); err != nil {
			return nil, fmt.Errorf("core: bad predicate IR: %w", err)
		}
	}
	for i, a := range d.Aggs {
		if len(a.ArgIR) > 0 {
			if _, err := ir.Decode(a.ArgIR); err != nil {
				return nil, fmt.Errorf("core: bad agg %d arg IR: %w", i, err)
			}
		}
	}
	return d, nil
}

// Hash computes the descriptor-cache key: "computed by applying a hash
// function to the NDP descriptor fields" (§IV-D1).
func (d *Descriptor) Hash() uint64 { return HashBytes(d.Encode()) }

// HashBytes hashes an encoded descriptor; Page Stores use it as the
// descriptor-cache key without decoding first.
func HashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

type descReader struct {
	buf []byte
	off int
	err error
}

func (r *descReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.err = fmt.Errorf("truncated at %d", r.off)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *descReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("truncated uvarint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *descReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("truncated varint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *descReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = fmt.Errorf("truncated bytes at %d", r.off)
		return nil
	}
	b := append([]byte(nil), r.buf[r.off:r.off+n]...)
	r.off += n
	return b
}
