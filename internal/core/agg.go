package core

import (
	"fmt"

	"taurus/internal/core/ir"
	"taurus/internal/expr"
	"taurus/internal/types"
)

// AggState is the partial-aggregation state for one AggSpec. The state
// attached to a REC_STATUS_NDP_AGGREGATE record is one AggState per
// pushed aggregate.
type AggState struct {
	// Count is the row count (COUNT/COUNT(*)) or, for SUM, the number
	// of non-NULL inputs folded in (needed so SUM over zero rows merges
	// as "no value" rather than zero).
	Count int64
	// Val holds the running SUM/MIN/MAX value; unset when Count == 0
	// for SUM and when no value seen for MIN/MAX.
	Val types.Datum
	// Has reports whether Val is meaningful.
	Has bool
}

// aggEval evaluates the aggregate argument for a row: either a direct
// column load or a JIT-compiled IR program.
type aggEval struct {
	spec AggSpec
	prog *ir.Compiled // nil when ArgCol >= 0 or COUNT(*)
}

// Aggregator accumulates rows into per-spec states. It is the shared
// kernel used by the Page Store plugin (partial aggregation) and by the
// frontend when completing skipped pages.
type Aggregator struct {
	evals  []aggEval
	states []AggState
}

// NewAggregator builds an aggregator for the descriptor's agg specs. The
// IR argument programs are decoded and JIT-compiled once.
func NewAggregator(aggs []AggSpec) (*Aggregator, error) {
	a := &Aggregator{
		evals:  make([]aggEval, len(aggs)),
		states: make([]AggState, len(aggs)),
	}
	for i, s := range aggs {
		a.evals[i].spec = s
		if len(s.ArgIR) > 0 {
			p, err := ir.Decode(s.ArgIR)
			if err != nil {
				return nil, fmt.Errorf("core: agg %d arg IR: %w", i, err)
			}
			a.evals[i].prog = ir.CompileProgram(p)
		}
	}
	return a, nil
}

// Reset clears the accumulated states (new group).
func (a *Aggregator) Reset() {
	for i := range a.states {
		a.states[i] = AggState{}
	}
}

// Empty reports whether nothing has been accumulated since Reset.
func (a *Aggregator) Empty() bool {
	for _, s := range a.states {
		if s.Count != 0 || s.Has {
			return false
		}
	}
	return true
}

// arg computes the aggregate argument for the row; ok=false means the
// argument is NULL.
func (e *aggEval) arg(row types.Row) (types.Datum, bool) {
	var v types.Datum
	switch {
	case e.prog != nil:
		v = e.prog.Run(row)
	case e.spec.ArgCol >= 0:
		v = row[e.spec.ArgCol]
	default:
		return types.Null(), false
	}
	return v, !v.IsNull()
}

// AccumulateRow folds one row into the states.
func (a *Aggregator) AccumulateRow(row types.Row) {
	for i := range a.evals {
		e := &a.evals[i]
		st := &a.states[i]
		switch e.spec.Fn {
		case AggCountStar:
			st.Count++
		case AggCount:
			if _, ok := e.arg(row); ok {
				st.Count++
			}
		case AggSum:
			v, ok := e.arg(row)
			if !ok {
				continue
			}
			if !st.Has {
				st.Val, st.Has = v, true
			} else {
				st.Val = expr.Arith(expr.OpAdd, st.Val, v)
			}
			st.Count++
		case AggMin:
			v, ok := e.arg(row)
			if !ok {
				continue
			}
			if !st.Has || types.Compare(v, st.Val) < 0 {
				st.Val, st.Has = v, true
			}
		case AggMax:
			v, ok := e.arg(row)
			if !ok {
				continue
			}
			if !st.Has || types.Compare(v, st.Val) > 0 {
				st.Val, st.Has = v, true
			}
		}
	}
}

// MergeStates folds previously-encoded partial states (from another page
// or another worker) into the accumulator.
func (a *Aggregator) MergeStates(states []AggState) error {
	if len(states) != len(a.states) {
		return fmt.Errorf("core: merging %d states into %d aggregates", len(states), len(a.states))
	}
	for i := range states {
		in := states[i]
		st := &a.states[i]
		switch a.evals[i].spec.Fn {
		case AggCountStar, AggCount:
			st.Count += in.Count
		case AggSum:
			if in.Has {
				if !st.Has {
					st.Val, st.Has = in.Val, true
				} else {
					st.Val = expr.Arith(expr.OpAdd, st.Val, in.Val)
				}
				st.Count += in.Count
			}
		case AggMin:
			if in.Has && (!st.Has || types.Compare(in.Val, st.Val) < 0) {
				st.Val, st.Has = in.Val, true
			}
		case AggMax:
			if in.Has && (!st.Has || types.Compare(in.Val, st.Val) > 0) {
				st.Val, st.Has = in.Val, true
			}
		}
	}
	return nil
}

// States returns the current states (aliased; copy before Reset).
func (a *Aggregator) States() []AggState { return a.states }

// EncodeAggStates appends the binary form of the states to dst. This is
// the blob appended to the base record payload of an NDP aggregate
// record.
func EncodeAggStates(dst []byte, states []AggState) []byte {
	for _, s := range states {
		dst = appendVarint(dst, s.Count)
		if s.Has {
			dst = append(dst, 1)
			dst = types.EncodeDatum(dst, s.Val)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// DecodeAggStates parses n states from buf.
func DecodeAggStates(buf []byte, n int) ([]AggState, int, error) {
	out := make([]AggState, n)
	off := 0
	for i := 0; i < n; i++ {
		c, m := varint(buf[off:])
		if m <= 0 {
			return nil, 0, fmt.Errorf("core: truncated agg state count")
		}
		off += m
		out[i].Count = c
		if off >= len(buf) {
			return nil, 0, fmt.Errorf("core: truncated agg state flag")
		}
		has := buf[off]
		off++
		if has != 0 {
			d, m, err := types.DecodeDatum(buf[off:])
			if err != nil {
				return nil, 0, err
			}
			out[i].Val, out[i].Has = d, true
			off += m
		}
	}
	return out, off, nil
}

// Small varint helpers (package-local to avoid importing encoding/binary
// at every call site).

func appendVarint(dst []byte, v int64) []byte {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	for uv >= 0x80 {
		dst = append(dst, byte(uv)|0x80)
		uv >>= 7
	}
	return append(dst, byte(uv))
}

func varint(buf []byte) (int64, int) {
	var uv uint64
	var shift uint
	for i, b := range buf {
		uv |= uint64(b&0x7F) << shift
		if b < 0x80 {
			v := int64(uv >> 1)
			if uv&1 != 0 {
				v = ^v
			}
			return v, i + 1
		}
		shift += 7
		if shift > 63 {
			break
		}
	}
	return 0, 0
}
