package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"taurus/internal/core/ir"
	"taurus/internal/expr"
	"taurus/internal/page"
	"taurus/internal/types"
)

// testSchemaIDV is the (id INT, v INT) schema used by the paper's §V-C
// example.
var testSchemaIDV = types.NewSchema(
	types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "v", Kind: types.KindInt, NotNull: true},
)

// buildLeaf creates a leaf page with (id, v) rows; ambiguous[i] marks the
// i-th row with a transaction ID above the low watermark (=100).
func buildLeaf(t testing.TB, pageID uint64, rows [][2]int64, ambiguous map[int]bool) *page.Page {
	t.Helper()
	pg := page.New(pageID, 1, 0)
	for i, r := range rows {
		key := types.EncodeKey(nil, types.Row{types.NewInt(r[0])})
		rowBytes := types.EncodeRow(nil, testSchemaIDV, types.Row{types.NewInt(r[0]), types.NewInt(r[1])})
		payload := page.EncodeLeafPayload(nil, key, rowBytes)
		trx := uint64(10)
		if ambiguous[i] {
			trx = 200 // above the low watermark
		}
		if _, err := pg.Append(page.RecOrdinary, trx, payload); err != nil {
			t.Fatal(err)
		}
	}
	return pg
}

func baseDescriptor() *Descriptor {
	return &Descriptor{
		IndexID:      1,
		Cols:         []types.Kind{types.KindInt, types.KindInt},
		FixedLens:    []uint16{0, 0},
		LowWatermark: 100,
	}
}

func TestDescriptorCodecRoundTrip(t *testing.T) {
	pred, err := ir.Compile(expr.GT(expr.Col(1, "v"), expr.ConstInt(3)), 2)
	if err != nil {
		t.Fatal(err)
	}
	argIR, err := ir.Compile(expr.Mul(expr.Col(0, "id"), expr.ConstInt(2)), 2)
	if err != nil {
		t.Fatal(err)
	}
	d := baseDescriptor()
	d.Projection = []uint16{0, 1}
	d.Predicate = pred.Encode()
	d.Aggs = []AggSpec{
		{Fn: AggSum, ArgCol: 1},
		{Fn: AggCountStar, ArgCol: -1},
		{Fn: AggMin, ArgCol: -1, ArgIR: argIR.Encode()},
	}
	d.GroupBy = []uint16{0}
	enc := d.Encode()
	got, err := DecodeDescriptor(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.IndexID != d.IndexID || got.LowWatermark != d.LowWatermark {
		t.Error("scalar fields lost")
	}
	if len(got.Cols) != 2 || got.Cols[0] != types.KindInt {
		t.Error("cols lost")
	}
	if len(got.Projection) != 2 || len(got.Aggs) != 3 || len(got.GroupBy) != 1 {
		t.Error("lists lost")
	}
	if got.Aggs[2].Fn != AggMin || len(got.Aggs[2].ArgIR) == 0 {
		t.Error("agg spec lost")
	}
	if !bytes.Equal(got.Predicate, d.Predicate) {
		t.Error("predicate bytes lost")
	}
	if got.Hash() != d.Hash() {
		t.Error("hash must be stable across encode/decode")
	}
}

func TestDescriptorDecodeRejectsGarbage(t *testing.T) {
	d := baseDescriptor()
	enc := d.Encode()
	if _, err := DecodeDescriptor(enc[:2]); err == nil {
		t.Error("short buffer must fail")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := DecodeDescriptor(bad); err == nil {
		t.Error("bad magic must fail")
	}
	for cut := 5; cut < len(enc); cut += 2 {
		if _, err := DecodeDescriptor(enc[:cut]); err == nil {
			t.Errorf("truncation at %d must fail", cut)
		}
	}
	// Out-of-range projection ordinal.
	d2 := baseDescriptor()
	d2.Projection = []uint16{9}
	if _, err := DecodeDescriptor(d2.Encode()); err == nil {
		t.Error("projection ordinal out of range must fail")
	}
	// Corrupt embedded IR.
	d3 := baseDescriptor()
	d3.Predicate = []byte("not an ir program")
	if _, err := DecodeDescriptor(d3.Encode()); err == nil {
		t.Error("bad predicate IR must fail")
	}
}

func TestAggregatorBasics(t *testing.T) {
	a, err := NewAggregator([]AggSpec{
		{Fn: AggCountStar, ArgCol: -1},
		{Fn: AggCount, ArgCol: 0},
		{Fn: AggSum, ArgCol: 0},
		{Fn: AggMin, ArgCol: 0},
		{Fn: AggMax, ArgCol: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Empty() {
		t.Error("fresh aggregator should be empty")
	}
	for _, v := range []int64{5, 3, 9} {
		a.AccumulateRow(types.Row{types.NewInt(v)})
	}
	a.AccumulateRow(types.Row{types.Null()})
	s := a.States()
	if s[0].Count != 4 {
		t.Errorf("COUNT(*) = %d", s[0].Count)
	}
	if s[1].Count != 3 {
		t.Errorf("COUNT(col) = %d", s[1].Count)
	}
	if !s[2].Has || s[2].Val.I != 17 {
		t.Errorf("SUM = %+v", s[2])
	}
	if s[3].Val.I != 3 || s[4].Val.I != 9 {
		t.Errorf("MIN/MAX = %v/%v", s[3].Val, s[4].Val)
	}
	// Encode/decode round trip.
	blob := EncodeAggStates(nil, s)
	dec, n, err := DecodeAggStates(blob, len(s))
	if err != nil || n != len(blob) {
		t.Fatalf("decode: %v (consumed %d of %d)", err, n, len(blob))
	}
	for i := range s {
		if dec[i].Count != s[i].Count || dec[i].Has != s[i].Has || (s[i].Has && !types.Equal(dec[i].Val, s[i].Val)) {
			t.Errorf("state %d: %+v vs %+v", i, dec[i], s[i])
		}
	}
	// Merge into a fresh aggregator doubles everything.
	b, _ := NewAggregator([]AggSpec{
		{Fn: AggCountStar, ArgCol: -1}, {Fn: AggCount, ArgCol: 0},
		{Fn: AggSum, ArgCol: 0}, {Fn: AggMin, ArgCol: 0}, {Fn: AggMax, ArgCol: 0},
	})
	if err := b.MergeStates(s); err != nil {
		t.Fatal(err)
	}
	if err := b.MergeStates(s); err != nil {
		t.Fatal(err)
	}
	bs := b.States()
	if bs[0].Count != 8 || bs[2].Val.I != 34 || bs[3].Val.I != 3 || bs[4].Val.I != 9 {
		t.Errorf("merged: %+v", bs)
	}
	if err := b.MergeStates(s[:2]); err == nil {
		t.Error("arity mismatch should fail")
	}
	a.Reset()
	if !a.Empty() {
		t.Error("Reset should clear")
	}
}

func TestProcessPageFilterProject(t *testing.T) {
	pg := buildLeaf(t, 7, [][2]int64{{1, 2}, {2, 10}, {3, 7}, {4, 8}, {5, 2}}, nil)
	pred, err := ir.Compile(expr.GE(expr.Col(1, "v"), expr.ConstInt(7)), 2)
	if err != nil {
		t.Fatal(err)
	}
	d := baseDescriptor()
	d.Predicate = pred.Encode()
	d.Projection = []uint16{0} // keep only id
	proc, err := NewProcessor(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := proc.ProcessPage(pg)
	if err != nil {
		t.Fatal(err)
	}
	if st.RecordsIn != 5 || st.Filtered != 2 || st.RecordsOut != 3 {
		t.Fatalf("stats: %+v", st)
	}
	if !out.IsNDP() {
		t.Fatal("output must be an NDP page")
	}
	recs := out.Records()
	wantIDs := []int64{2, 3, 4}
	for i, r := range recs {
		if r.Type != page.RecNDPProjection {
			t.Fatalf("rec %d type %d", i, r.Type)
		}
		_, rowBytes, err := page.SplitLeafPayload(r.Payload)
		if err != nil {
			t.Fatal(err)
		}
		row := make(types.Row, 1)
		if _, err := types.DecodeRow(rowBytes, proc.OutSchema(), row); err != nil {
			t.Fatal(err)
		}
		if row[0].I != wantIDs[i] {
			t.Errorf("rec %d id %d want %d", i, row[0].I, wantIDs[i])
		}
	}
	// The NDP page shipped is much smaller than the 16 KB source.
	if len(out.Bytes()) >= len(pg.Bytes())/10 {
		t.Errorf("NDP page is %d bytes, expected strong reduction from %d", len(out.Bytes()), len(pg.Bytes()))
	}
}

func TestProcessPageAmbiguousPassthrough(t *testing.T) {
	pg := buildLeaf(t, 7, [][2]int64{{1, 2}, {2, 10}, {3, 7}}, map[int]bool{1: true})
	pred, _ := ir.Compile(expr.GE(expr.Col(1, "v"), expr.ConstInt(100)), 2) // drops everything visible
	d := baseDescriptor()
	d.Predicate = pred.Encode()
	d.Projection = []uint16{0}
	proc, _ := NewProcessorFromDescriptor(d)
	out, st, err := proc.ProcessPage(pg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ambiguous != 1 || st.Filtered != 2 || st.RecordsOut != 1 {
		t.Fatalf("stats: %+v", st)
	}
	recs := out.Records()
	if len(recs) != 1 || recs[0].Type != page.RecOrdinary {
		t.Fatal("ambiguous record must stay an ordinary record")
	}
	// Full-width row survives: "Sending a 'narrower' ambiguous record
	// could cause InnoDB to malfunction" (§V-A).
	_, rowBytes, _ := page.SplitLeafPayload(recs[0].Payload)
	full := make(types.Row, 2)
	if _, err := types.DecodeRow(rowBytes, proc.FullSchema(), full); err != nil {
		t.Fatal(err)
	}
	if full[0].I != 2 || full[1].I != 10 {
		t.Fatalf("ambiguous row = %v", full)
	}
	if recs[0].TrxID != 200 {
		t.Error("ambiguous trx id must be preserved")
	}
}

func TestProcessPageDeleteMarkedSkipped(t *testing.T) {
	pg := buildLeaf(t, 7, [][2]int64{{1, 2}, {2, 3}}, nil)
	// Delete-mark the first record.
	pg.SetDeleteMark(pg.FirstRecord(), true)
	d := baseDescriptor()
	d.Projection = []uint16{0, 1}
	proc, _ := NewProcessorFromDescriptor(d)
	out, st, err := proc.ProcessPage(pg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 1 || st.RecordsOut != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if out.NumRecords() != 1 {
		t.Fatal("visible delete-marked records must be skipped")
	}
}

func TestProcessPageEmptyResult(t *testing.T) {
	pg := buildLeaf(t, 7, [][2]int64{{1, 2}, {2, 3}}, nil)
	pred, _ := ir.Compile(expr.GT(expr.Col(1, "v"), expr.ConstInt(100)), 2)
	d := baseDescriptor()
	d.Predicate = pred.Encode()
	proc, _ := NewProcessorFromDescriptor(d)
	out, _, err := proc.ProcessPage(pg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsNDPEmpty() {
		t.Fatal("fully-filtered page must carry the empty marker")
	}
	if len(out.Bytes()) != page.HeaderSize {
		t.Fatalf("empty NDP page should be header-only, got %d bytes", len(out.Bytes()))
	}
}

func TestProcessPageRejectsWrongInput(t *testing.T) {
	d := baseDescriptor()
	proc, _ := NewProcessorFromDescriptor(d)
	ndp := page.NewNDP(1, 1, 128)
	if _, _, err := proc.ProcessPage(ndp); err == nil {
		t.Error("NDP input must be rejected")
	}
	internal := page.New(2, 1, 1)
	if _, _, err := proc.ProcessPage(internal); err == nil {
		t.Error("non-leaf input must be rejected")
	}
	wrongIdx := page.New(3, 99, 0)
	if _, _, err := proc.ProcessPage(wrongIdx); err == nil {
		t.Error("wrong index must be rejected")
	}
}

// TestAggregationPaperExampleP1 reproduces §V-C's single-page example:
// P1 = {(1,2),(2,10)?,(3,7),(4,8)?,(5,2)}, scalar SUM over v.
// NDP(P1) = {(2,10)?, (4,8)?, ((5,2), 9)} with 9 = 2 + 7.
func TestAggregationPaperExampleP1(t *testing.T) {
	p1 := buildLeaf(t, 1, [][2]int64{{1, 2}, {2, 10}, {3, 7}, {4, 8}, {5, 2}},
		map[int]bool{1: true, 3: true})
	d := baseDescriptor()
	d.Aggs = []AggSpec{{Fn: AggSum, ArgCol: 1}}
	proc, err := NewProcessorFromDescriptor(d)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := proc.ProcessPage(p1)
	if err != nil {
		t.Fatal(err)
	}
	recs := out.Records()
	if len(recs) != 3 {
		t.Fatalf("NDP(P1) has %d records, want 3", len(recs))
	}
	// (2,10)? and (4,8)? stay ordinary and ambiguous.
	for i, wantID := range []int64{2, 4} {
		if recs[i].Type != page.RecOrdinary {
			t.Errorf("rec %d should be ordinary", i)
		}
		_, rowBytes, _ := page.SplitLeafPayload(recs[i].Payload)
		row := make(types.Row, 2)
		types.DecodeRow(rowBytes, testSchemaIDV, row)
		if row[0].I != wantID {
			t.Errorf("rec %d id %d want %d", i, row[0].I, wantID)
		}
	}
	// ((5,2), 9).
	if recs[2].Type != page.RecNDPAggregate {
		t.Fatalf("last record should be the aggregate record")
	}
	_, row, states, err := proc.DecodeAggRecord(recs[2].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].I != 5 || row[1].I != 2 {
		t.Errorf("base row = %v, want (5,2)", row)
	}
	if !states[0].Has || states[0].Val.I != 9 {
		t.Errorf("attached sum = %+v, want 9", states[0])
	}
}

// TestAggregationPaperExampleCrossPage reproduces the full §V-C example:
// NDP(P1, P2) = {(2,10)?, (4,8)?, (12,2)?, ((14,9), 26)} with
// 26 = 2 (P1 base) + 9 (P1 partial) + 15 (P2 partial).
func TestAggregationPaperExampleCrossPage(t *testing.T) {
	p1 := buildLeaf(t, 1, [][2]int64{{1, 2}, {2, 10}, {3, 7}, {4, 8}, {5, 2}},
		map[int]bool{1: true, 3: true})
	p2 := buildLeaf(t, 2, [][2]int64{{11, 10}, {12, 2}, {13, 5}, {14, 9}},
		map[int]bool{1: true})
	d := baseDescriptor()
	d.Aggs = []AggSpec{{Fn: AggSum, ArgCol: 1}}
	proc, err := NewProcessorFromDescriptor(d)
	if err != nil {
		t.Fatal(err)
	}
	n1, _, err := proc.ProcessPage(p1)
	if err != nil {
		t.Fatal(err)
	}
	n2, _, err := proc.ProcessPage(p2)
	if err != nil {
		t.Fatal(err)
	}
	// Check NDP(P2) = {(12,2)?, ((14,9),15)} first.
	recs2 := n2.Records()
	if len(recs2) != 2 || recs2[1].Type != page.RecNDPAggregate {
		t.Fatalf("NDP(P2) shape wrong: %d records", len(recs2))
	}
	_, row2, st2, _ := proc.DecodeAggRecord(recs2[1].Payload)
	if row2[0].I != 14 || st2[0].Val.I != 15 {
		t.Fatalf("NDP(P2) agg = (%v, %v), want ((14,9),15)", row2, st2[0].Val)
	}
	// Cross-page merge.
	if err := proc.MergeScalarBatch([]*page.Page{n1, n2}); err != nil {
		t.Fatal(err)
	}
	// P1 keeps only its two ambiguous records.
	recs1 := n1.Records()
	if len(recs1) != 2 {
		t.Fatalf("NDP(P1,P2): P1 has %d records, want 2 ambiguous", len(recs1))
	}
	for _, r := range recs1 {
		if r.Type != page.RecOrdinary {
			t.Error("only ambiguous records should remain in P1")
		}
	}
	// P2 holds (12,2)? and ((14,9),26).
	recs2 = n2.Records()
	if len(recs2) != 2 {
		t.Fatalf("NDP(P1,P2): P2 has %d records, want 2", len(recs2))
	}
	if recs2[1].Type != page.RecNDPAggregate {
		t.Fatal("P2 must end with the merged aggregate record")
	}
	_, row, states, err := proc.DecodeAggRecord(recs2[1].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].I != 14 || row[1].I != 9 {
		t.Errorf("merged base = %v, want (14,9)", row)
	}
	if states[0].Val.I != 26 {
		t.Errorf("merged sum = %v, want 26", states[0].Val)
	}
}

func TestGroupedAggregationPerPage(t *testing.T) {
	// Rows grouped by id/10: groups {1x: 3 rows}, {2x: 2 rows}.
	rows := [][2]int64{{10, 1}, {11, 2}, {12, 3}, {20, 4}, {21, 5}}
	pg := buildLeaf(t, 1, rows, nil)
	// Group by a computed prefix is not possible; group by column 0 with
	// distinct values would make singleton groups. Use v's tens digit by
	// grouping on a dedicated column instead: rebuild with group col.
	schema := types.NewSchema(
		types.Column{Name: "g", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindInt},
	)
	pg = page.New(1, 1, 0)
	data := [][2]int64{{1, 10}, {1, 20}, {1, 30}, {2, 5}, {2, 7}}
	for i, r := range data {
		key := types.EncodeKey(nil, types.Row{types.NewInt(r[0]), types.NewInt(int64(i))})
		rowBytes := types.EncodeRow(nil, schema, types.Row{types.NewInt(r[0]), types.NewInt(r[1])})
		pg.Append(page.RecOrdinary, 10, page.EncodeLeafPayload(nil, key, rowBytes))
	}
	d := baseDescriptor()
	d.Aggs = []AggSpec{{Fn: AggSum, ArgCol: 1}, {Fn: AggCountStar, ArgCol: -1}}
	d.GroupBy = []uint16{0}
	proc, err := NewProcessorFromDescriptor(d)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := proc.ProcessPage(pg)
	if err != nil {
		t.Fatal(err)
	}
	recs := out.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records, want one aggregate per group", len(recs))
	}
	// Group 1: base (1,30), partial sum 30 (10+20), count 2.
	_, row, states, _ := proc.DecodeAggRecord(recs[0].Payload)
	if row[0].I != 1 || row[1].I != 30 || states[0].Val.I != 30 || states[1].Count != 2 {
		t.Errorf("group 1: base=%v states=%+v", row, states)
	}
	// Group 2: base (2,7), partial sum 5, count 1.
	_, row, states, _ = proc.DecodeAggRecord(recs[1].Payload)
	if row[0].I != 2 || row[1].I != 7 || states[0].Val.I != 5 || states[1].Count != 1 {
		t.Errorf("group 2: base=%v states=%+v", row, states)
	}
	// MergeScalarBatch must be a no-op for grouped aggregation.
	before := out.NumRecords()
	if err := proc.MergeScalarBatch([]*page.Page{out}); err != nil {
		t.Fatal(err)
	}
	if out.NumRecords() != before {
		t.Error("grouped pages must not be cross-page merged")
	}
}

// Property: for random pages and predicates, NDP filtering+projection
// yields exactly the rows the frontend would produce, in the same order.
func TestNDPEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		rows := make([][2]int64, n)
		amb := map[int]bool{}
		for i := range rows {
			rows[i] = [2]int64{int64(i), r.Int63n(40)}
			if r.Intn(6) == 0 {
				amb[i] = true
			}
		}
		pg := buildLeaf(t, 1, rows, amb)
		threshold := r.Int63n(40)
		e := expr.GE(expr.Col(1, "v"), expr.ConstInt(threshold))
		prog, err := ir.Compile(e, 2)
		if err != nil {
			return false
		}
		d := baseDescriptor()
		d.Predicate = prog.Encode()
		d.Projection = []uint16{0, 1}
		proc, err := NewProcessorFromDescriptor(d)
		if err != nil {
			return false
		}
		out, _, err := proc.ProcessPage(pg)
		if err != nil {
			return false
		}
		// Consume: NDP-projected records are final; ordinary records are
		// ambiguous and the "frontend" (this test) applies the predicate.
		var got []int64
		okAll := true
		out.Iter(func(rec page.Record) bool {
			_, rowBytes, err := page.SplitLeafPayload(rec.Payload)
			if err != nil {
				okAll = false
				return false
			}
			row := make(types.Row, 2)
			if _, err := types.DecodeRow(rowBytes, testSchemaIDV, row); err != nil {
				okAll = false
				return false
			}
			if rec.Type == page.RecOrdinary {
				if !e.EvalBool(row) {
					return true
				}
			}
			got = append(got, row[0].I)
			return true
		})
		if !okAll {
			return false
		}
		// Reference: frontend-only evaluation.
		var want []int64
		for _, rw := range rows {
			if rw[1] >= threshold {
				want = append(want, rw[0])
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: scalar-aggregate NDP totals equal frontend totals regardless
// of page boundaries and batch splits.
func TestCrossPageAggInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nPages := 1 + r.Intn(5)
		var total int64
		var ambTotal int64
		pages := make([]*page.Page, nPages)
		for pi := range pages {
			n := r.Intn(10) // some pages may be empty
			rows := make([][2]int64, n)
			amb := map[int]bool{}
			for i := range rows {
				rows[i] = [2]int64{int64(pi*100 + i), r.Int63n(50)}
				if r.Intn(4) == 0 {
					amb[i] = true
					ambTotal += rows[i][1]
				} else {
					total += rows[i][1]
				}
			}
			pages[pi] = buildLeaf(t, uint64(pi+1), rows, amb)
		}
		d := baseDescriptor()
		d.Aggs = []AggSpec{{Fn: AggSum, ArgCol: 1}, {Fn: AggCountStar, ArgCol: -1}}
		proc, err := NewProcessorFromDescriptor(d)
		if err != nil {
			return false
		}
		ndp := make([]*page.Page, nPages)
		for i, pg := range pages {
			ndp[i], _, err = proc.ProcessPage(pg)
			if err != nil {
				return false
			}
		}
		if err := proc.MergeScalarBatch(ndp); err != nil {
			return false
		}
		// Consume: sum attached states + base rows + ambiguous rows
		// (treating all ambiguous as visible for this reference check).
		var got int64
		for _, pg := range ndp {
			ok := true
			pg.Iter(func(rec page.Record) bool {
				switch rec.Type {
				case page.RecNDPAggregate:
					_, row, states, err := proc.DecodeAggRecord(rec.Payload)
					if err != nil {
						ok = false
						return false
					}
					if states[0].Has {
						got += states[0].Val.I
					}
					got += row[1].I
				case page.RecOrdinary:
					_, rowBytes, _ := page.SplitLeafPayload(rec.Payload)
					row := make(types.Row, 2)
					if _, err := types.DecodeRow(rowBytes, testSchemaIDV, row); err != nil {
						ok = false
						return false
					}
					got += row[1].I
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return got == total+ambTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderingPreserved(t *testing.T) {
	// NDP output must keep index key order (§IV-A requirement).
	rows := make([][2]int64, 40)
	for i := range rows {
		rows[i] = [2]int64{int64(i), int64(i % 7)}
	}
	pg := buildLeaf(t, 1, rows, map[int]bool{3: true, 17: true, 31: true})
	pred, _ := ir.Compile(expr.GE(expr.Col(1, "v"), expr.ConstInt(3)), 2)
	d := baseDescriptor()
	d.Predicate = pred.Encode()
	proc, _ := NewProcessorFromDescriptor(d)
	out, _, err := proc.ProcessPage(pg)
	if err != nil {
		t.Fatal(err)
	}
	var prev []byte
	out.Iter(func(rec page.Record) bool {
		key, _, _ := page.SplitLeafPayload(rec.Payload)
		if prev != nil && bytes.Compare(prev, key) > 0 {
			t.Error("keys out of order in NDP page")
		}
		prev = append(prev[:0], key...)
		return true
	})
}
