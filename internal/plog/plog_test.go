package plog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, mut func(*Options)) *Log {
	t.Helper()
	opts := Options{Dir: dir, FlushInterval: 100 * time.Microsecond}
	if mut != nil {
		mut(&opts)
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func collect(t *testing.T, l *Log) (marks []uint64, payloads [][]byte) {
	t.Helper()
	if err := l.Replay(func(mark uint64, payload []byte) error {
		marks = append(marks, mark)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	for i := 0; i < 10; i++ {
		seq, err := l.Append(uint64(i+1), []byte(fmt.Sprintf("entry-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	marks, payloads := collect(t, l)
	if len(marks) != 10 || marks[9] != 10 || string(payloads[0]) != "entry-0" {
		t.Fatalf("replay: %d entries, marks=%v", len(marks), marks)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything survives, clean tail.
	l2 := openT(t, dir, nil)
	defer l2.Close()
	if ri := l2.Recovery(); ri.Entries != 10 || ri.TornEntry {
		t.Fatalf("recovery = %+v", ri)
	}
	if l2.Entries() != 10 {
		t.Fatalf("entries = %d", l2.Entries())
	}
	// Appends continue the sequence.
	seq, err := l2.Append(11, []byte("after-reopen"))
	if err != nil || seq != 10 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, func(o *Options) { o.SegmentBytes = 256 })
	payload := bytes.Repeat([]byte{0xAB}, 100)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(uint64(i+1), payload); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("segments = %d, want rotation", l.Segments())
	}
	if l.Snapshot().Rotations == 0 {
		t.Fatal("no rotations counted")
	}
	marks, _ := collect(t, l)
	if len(marks) != 10 {
		t.Fatalf("replay after rotation: %d entries", len(marks))
	}
	l.Close()

	l2 := openT(t, dir, func(o *Options) { o.SegmentBytes = 256 })
	defer l2.Close()
	if l2.Entries() != 10 {
		t.Fatalf("entries after reopen = %d", l2.Entries())
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, de := range des {
		if filepath.Ext(de.Name()) == segSuffix {
			last = filepath.Join(dir, de.Name())
		}
	}
	if last == "" {
		t.Fatal("no segments")
	}
	return last
}

func TestTornTailShortWrite(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	for i := 0; i < 5; i++ {
		if _, err := l.Append(uint64(i+1), []byte("abcdefgh")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Cut the final entry in half: a torn write.
	seg := lastSegment(t, dir)
	fi, _ := os.Stat(seg)
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir, nil)
	defer l2.Close()
	ri := l2.Recovery()
	if !ri.TornEntry || ri.Entries != 4 {
		t.Fatalf("recovery = %+v, want 4 entries + torn tail", ri)
	}
	// The torn entry is gone; appends resume at its sequence slot.
	if seq, err := l2.Append(100, []byte("fresh")); err != nil || seq != 4 {
		t.Fatalf("append after torn recovery: seq=%d err=%v", seq, err)
	}
	marks, _ := collect(t, l2)
	if len(marks) != 5 || marks[4] != 100 {
		t.Fatalf("marks after torn recovery = %v", marks)
	}
}

func TestTornTailCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(uint64(i+1), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Flip a byte inside the final entry's payload.
	seg := lastSegment(t, dir)
	data, _ := os.ReadFile(seg)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir, nil)
	defer l2.Close()
	if ri := l2.Recovery(); !ri.TornEntry || ri.Entries != 2 {
		t.Fatalf("recovery = %+v, want CRC-damaged tail dropped", ri)
	}
}

func TestCorruptionMidLogRejected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, func(o *Options) { o.SegmentBytes = 128 })
	for i := 0; i < 8; i++ {
		if _, err := l.Append(uint64(i+1), bytes.Repeat([]byte{1}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 2 {
		t.Fatalf("need ≥2 segments, got %d", l.Segments())
	}
	l.Close()
	// Corrupt the FIRST segment: that is lost history, not a torn tail.
	des, _ := os.ReadDir(dir)
	first := filepath.Join(dir, des[0].Name())
	data, _ := os.ReadFile(first)
	data[12] ^= 0xFF
	os.WriteFile(first, data, 0o644)
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("mid-log corruption must fail Open")
	}
}

func TestTruncateBelowGC(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, func(o *Options) { o.SegmentBytes = 128 })
	defer l.Close()
	for i := 0; i < 12; i++ {
		if _, err := l.Append(uint64(i+1), bytes.Repeat([]byte{2}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	total := l.Segments()
	if total < 3 {
		t.Fatalf("segments = %d", total)
	}
	removed, err := l.TruncateBelow(9)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("nothing GCed")
	}
	if l.Segments() != total-removed {
		t.Fatalf("segments = %d after removing %d of %d", l.Segments(), removed, total)
	}
	// Surviving entries all have marks ≥ 9 except those sharing the
	// active or boundary segment.
	marks, _ := collect(t, l)
	if marks[len(marks)-1] != 12 {
		t.Fatalf("lost the tail: %v", marks)
	}
	for _, m := range marks {
		if m >= 9 {
			return // watermark retained
		}
	}
	t.Fatalf("watermark entries missing: %v", marks)
}

func TestGroupCommitConcurrentAppenders(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, func(o *Options) { o.FlushInterval = time.Millisecond })
	const g, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(uint64(w*per+i+1), []byte("concurrent")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Snapshot()
	if st.Appends != g*per {
		t.Fatalf("appends = %d", st.Appends)
	}
	// Group commit must have amortized fsyncs across appenders.
	if st.Syncs >= st.Appends {
		t.Fatalf("group commit did not batch: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	l.Close()
	l2 := openT(t, dir, nil)
	defer l2.Close()
	if l2.Entries() != g*per {
		t.Fatalf("entries = %d", l2.Entries())
	}
}

func TestSyncEveryAppend(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, func(o *Options) { o.SyncEveryAppend = true })
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.Append(uint64(i+1), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Snapshot(); st.Syncs < 5 {
		t.Fatalf("syncs = %d, want one per append", st.Syncs)
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	l := openT(t, t.TempDir(), nil)
	l.Close()
	if _, err := l.Append(1, []byte("x")); err == nil {
		t.Fatal("append after close must fail")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestEmptyPayloadAndBigMark(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, nil)
	if _, err := l.Append(^uint64(0), nil); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2 := openT(t, dir, nil)
	defer l2.Close()
	marks, payloads := collect(t, l2)
	if len(marks) != 1 || marks[0] != ^uint64(0) || len(payloads[0]) != 0 {
		t.Fatalf("roundtrip: marks=%v payloads=%v", marks, payloads)
	}
}
