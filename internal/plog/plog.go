// Package plog implements the persistent log that makes a Log Store
// durable: "a service executing in the storage layer responsible for
// storing log records durably. Once all of the log records belonging to
// a transaction have been made durable, transaction completion can be
// acknowledged" (§II).
//
// The log is a directory of append-only segment files. Every entry is
// framed with a length and a CRC32-C checksum, and carries a caller
// supplied 64-bit mark (the Log Store stores the batch's highest LSN
// there) so whole sealed segments can be garbage-collected once a
// durability watermark passes them. Appends are acknowledged through
// group commit: concurrent appenders share one fsync, issued by a
// background syncer after at most FlushInterval — the classic batched
// commit that amortizes the dominant cost of synchronous logging.
//
// Recovery (Open) replays the segments in order and tolerates a torn
// tail: a final entry whose header or body was cut short, or whose CRC
// does not match, marks the end of the durable prefix. The damaged
// suffix is discarded and the file truncated, exactly like InnoDB's and
// Aurora's redo recovery. Corruption anywhere but the tail is reported
// as an error rather than silently skipped — it means lost history, not
// an interrupted write.
package plog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	// DefaultSegmentBytes seals a segment at 16 MB.
	DefaultSegmentBytes = 16 << 20
	// DefaultFlushInterval is the group-commit window. Two milliseconds
	// keeps worst-case commit latency low while still letting a burst of
	// concurrent appenders share one fsync.
	DefaultFlushInterval = 2 * time.Millisecond

	segSuffix = ".seg"
	// headerSize frames every entry: u32 payload length, u32 CRC32-C
	// over (mark || payload), u64 mark.
	headerSize = 4 + 4 + 8
	// maxEntryBytes bounds a single entry (sanity check during
	// recovery; a longer length field means a corrupt header).
	maxEntryBytes = 256 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Log.
type Options struct {
	// Dir is the segment directory (created if missing).
	Dir string
	// SegmentBytes seals the active segment once it grows past this
	// size (default DefaultSegmentBytes).
	SegmentBytes int64
	// FlushInterval is the group-commit window: an Append returns once
	// an fsync covering it completes, and the syncer batches all
	// appends that arrive within this interval into one fsync (default
	// DefaultFlushInterval).
	FlushInterval time.Duration
	// SyncEveryAppend forces an fsync on every append instead of group
	// commit — the baseline the durability benchmark compares against.
	SyncEveryAppend bool
	// NoSync disables fsync entirely (volatile mode for tests and
	// benchmarks that only exercise the file format).
	NoSync bool
}

// segment is one on-disk file of the log.
type segment struct {
	path    string
	index   uint64 // first entry sequence number
	entries int    // entries in the segment
	bytes   int64  // valid byte length
	maxMark uint64 // highest mark seen in the segment
}

// RecoveryInfo reports what Open found on disk.
type RecoveryInfo struct {
	// Segments and Entries count the surviving log.
	Segments int
	Entries  int
	// TornBytes is the size of the discarded tail (0 = clean shutdown);
	// TornEntry reports whether a damaged final entry was dropped.
	TornBytes int64
	TornEntry bool
}

// Stats counts log activity.
type Stats struct {
	Appends   uint64 // entries appended
	Syncs     uint64 // fsync calls issued
	Rotations uint64 // segments sealed
	GCBytes   uint64 // bytes reclaimed by TruncateBelow
}

// Log is a segmented durable log.
type Log struct {
	opts Options
	rec  RecoveryInfo

	mu      sync.Mutex
	sealed  []*segment
	active  *segment
	file    *os.File
	nextSeq uint64
	closed  bool

	// Group commit state, guarded by mu.
	syncCond   *sync.Cond
	appended   uint64 // bytes appended to the active file, ever
	synced     uint64 // bytes covered by a completed fsync
	syncReq    bool   // an appender is waiting for a sync
	syncErr    error  // sticky fsync failure; fails all later appends
	syncerDone chan struct{}
	syncerWake chan struct{}
	stats      Stats
}

// Open creates or recovers the log in opts.Dir.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("plog: Dir required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = DefaultFlushInterval
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("plog: %w", err)
	}
	l := &Log{opts: opts, syncerWake: make(chan struct{}, 1), syncerDone: make(chan struct{})}
	l.syncCond = sync.NewCond(&l.mu)
	if err := l.recover(); err != nil {
		return nil, err
	}
	go l.syncLoop()
	return l, nil
}

// Recovery reports what Open found.
func (l *Log) Recovery() RecoveryInfo { return l.rec }

// Snapshot returns a copy of the counters.
func (l *Log) Snapshot() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// segPath names the segment whose first entry is seq.
func (l *Log) segPath(seq uint64) string {
	return filepath.Join(l.opts.Dir, fmt.Sprintf("%016x%s", seq, segSuffix))
}

// recover scans the directory, validates every segment, truncates a
// torn tail on the last one, and opens the last segment for append.
func (l *Log) recover() error {
	names, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("plog: %w", err)
	}
	var segs []*segment
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			return fmt.Errorf("plog: alien file %q in log dir", name)
		}
		segs = append(segs, &segment{path: filepath.Join(l.opts.Dir, name), index: idx})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	for i, sg := range segs {
		last := i == len(segs)-1
		if err := l.scanSegment(sg, last); err != nil {
			return err
		}
		if sg.index != l.nextSeq && !(i == 0 && l.nextSeq == 0) {
			return fmt.Errorf("plog: segment %s starts at entry %d, want %d (missing segment?)",
				sg.path, sg.index, l.nextSeq)
		}
		l.nextSeq = sg.index + uint64(sg.entries)
		l.rec.Entries += sg.entries
	}
	l.rec.Segments = len(segs)
	if len(segs) > 0 {
		l.active = segs[len(segs)-1]
		l.sealed = segs[:len(segs)-1]
	}
	if l.active == nil {
		if err := l.openActive(l.nextSeq); err != nil {
			return err
		}
		l.rec.Segments = 1
	} else {
		f, err := os.OpenFile(l.active.path, os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("plog: %w", err)
		}
		// Drop the torn tail before appending over it.
		if err := f.Truncate(l.active.bytes); err != nil {
			f.Close()
			return fmt.Errorf("plog: truncating torn tail: %w", err)
		}
		if _, err := f.Seek(l.active.bytes, 0); err != nil {
			f.Close()
			return fmt.Errorf("plog: %w", err)
		}
		l.file = f
		l.appended = uint64(l.active.bytes)
		l.synced = l.appended
	}
	return nil
}

// scanSegment validates sg's frames. A short or corrupt final frame is
// tolerated only on the last segment (torn tail); elsewhere it is an
// error.
func (l *Log) scanSegment(sg *segment, last bool) error {
	data, err := os.ReadFile(sg.path)
	if err != nil {
		return fmt.Errorf("plog: %w", err)
	}
	off := int64(0)
	for off < int64(len(data)) {
		n, mark, _, err := parseEntry(data[off:])
		if err == errTorn {
			if !last {
				return fmt.Errorf("plog: segment %s corrupt at offset %d (not the final segment)", sg.path, off)
			}
			l.rec.TornBytes = int64(len(data)) - off
			l.rec.TornEntry = l.rec.TornBytes > 0
			break
		}
		if err != nil {
			return fmt.Errorf("plog: segment %s offset %d: %w", sg.path, off, err)
		}
		sg.entries++
		if mark > sg.maxMark {
			sg.maxMark = mark
		}
		off += n
	}
	sg.bytes = off
	return nil
}

var errTorn = fmt.Errorf("plog: torn entry")

// parseEntry reads one frame from b. Returns (0, 0, nil, nil) at a
// clean end, errTorn for a short/corrupt frame.
func parseEntry(b []byte) (n int64, mark uint64, payload []byte, err error) {
	if len(b) == 0 {
		return 0, 0, nil, nil
	}
	if len(b) < headerSize {
		return 0, 0, nil, errTorn
	}
	length := binary.LittleEndian.Uint32(b)
	if length > maxEntryBytes {
		return 0, 0, nil, errTorn
	}
	sum := binary.LittleEndian.Uint32(b[4:])
	mark = binary.LittleEndian.Uint64(b[8:])
	end := headerSize + int(length)
	if len(b) < end {
		return 0, 0, nil, errTorn
	}
	payload = b[headerSize:end]
	crc := crc32.Update(0, crcTable, b[8:headerSize]) // mark bytes
	crc = crc32.Update(crc, crcTable, payload)
	if crc != sum {
		return 0, 0, nil, errTorn
	}
	return int64(end), mark, payload, nil
}

// appendFrame encodes one entry frame.
func appendFrame(dst []byte, mark uint64, payload []byte) []byte {
	var markBuf [8]byte
	binary.LittleEndian.PutUint64(markBuf[:], mark)
	crc := crc32.Update(0, crcTable, markBuf[:])
	crc = crc32.Update(crc, crcTable, payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	dst = append(dst, markBuf[:]...)
	return append(dst, payload...)
}

func (l *Log) openActive(seq uint64) error {
	sg := &segment{path: l.segPath(seq), index: seq}
	f, err := os.OpenFile(sg.path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("plog: %w", err)
	}
	l.active = sg
	l.file = f
	// appended/synced count bytes across the log's whole life (not per
	// file) so group-commit waiters survive a rotation under them.
	return nil
}

// rotateLocked seals the active segment and opens a fresh one. The
// sealed file is fully synced first (in syncing modes) so GC and
// recovery can trust it.
func (l *Log) rotateLocked() error {
	if !l.opts.NoSync {
		if err := l.file.Sync(); err != nil {
			return fmt.Errorf("plog: %w", err)
		}
		l.stats.Syncs++
	}
	l.synced = l.appended
	l.syncCond.Broadcast()
	if err := l.file.Close(); err != nil {
		return fmt.Errorf("plog: %w", err)
	}
	l.sealed = append(l.sealed, l.active)
	l.stats.Rotations++
	return l.openActive(l.nextSeq)
}

// Append durably stores one entry and returns its sequence number. It
// does not return until the entry is covered by an fsync (unless the
// log runs with NoSync).
func (l *Log) Append(mark uint64, payload []byte) (uint64, error) {
	seq, token, err := l.AppendAsync(mark, payload)
	if err != nil {
		return 0, err
	}
	if err := l.WaitDurable(token); err != nil {
		return 0, err
	}
	return seq, nil
}

// AppendAsync writes the entry into the active segment — file order is
// the order of AppendAsync calls — and returns a durability token for
// WaitDurable, without waiting for the fsync itself. Callers that must
// persist entries in a specific order (the Log Store appends in LSN
// order) call AppendAsync under their own ordering lock and wait for
// durability outside it, so the wait still group-commits across
// concurrent callers.
func (l *Log) AppendAsync(mark uint64, payload []byte) (seq, token uint64, err error) {
	frame := appendFrame(nil, mark, payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, fmt.Errorf("plog: closed")
	}
	if l.syncErr != nil {
		return 0, 0, l.syncErr
	}
	if l.active.bytes > 0 && l.active.bytes+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, 0, err
		}
	}
	if _, err := l.file.Write(frame); err != nil {
		return 0, 0, fmt.Errorf("plog: %w", err)
	}
	seq = l.nextSeq
	l.nextSeq++
	l.active.entries++
	l.active.bytes += int64(len(frame))
	if mark > l.active.maxMark {
		l.active.maxMark = mark
	}
	l.appended += uint64(len(frame))
	l.stats.Appends++
	return seq, l.appended, nil
}

// WaitDurable blocks until an fsync covers the given append token.
func (l *Log) WaitDurable(token uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.NoSync {
		return l.syncErr
	}
	if l.synced >= token {
		return l.syncErr
	}
	if l.opts.SyncEveryAppend {
		return l.syncToLocked(token)
	}
	// Group commit: wake the syncer and wait for coverage.
	l.syncReq = true
	select {
	case l.syncerWake <- struct{}{}:
	default:
	}
	for l.synced < token && !l.closed && l.syncErr == nil {
		l.syncCond.Wait()
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.synced < token {
		return fmt.Errorf("plog: closed during append")
	}
	return nil
}

// syncToLocked fsyncs everything appended to the active file (caller
// holds mu). A failure is sticky: durability can no longer be promised.
func (l *Log) syncToLocked(target uint64) error {
	_ = target
	if err := l.file.Sync(); err != nil {
		l.syncErr = fmt.Errorf("plog: fsync: %w", err)
		l.syncCond.Broadcast()
		return l.syncErr
	}
	l.stats.Syncs++
	if l.appended > l.synced {
		l.synced = l.appended
	}
	l.syncCond.Broadcast()
	return nil
}

// syncLoop is the group-commit daemon: once woken it sleeps the flush
// interval (gathering concurrent appends), then issues one fsync for
// everyone waiting.
func (l *Log) syncLoop() {
	for {
		select {
		case <-l.syncerDone:
			return
		case <-l.syncerWake:
		}
		time.Sleep(l.opts.FlushInterval)
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		if l.syncReq && l.synced < l.appended {
			l.syncReq = false
			// A failure is recorded in syncErr and re-surfaced to every
			// waiting and future appender.
			_ = l.syncToLocked(l.appended)
		}
		l.mu.Unlock()
	}
}

// Sync forces an fsync of everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("plog: closed")
	}
	if l.opts.NoSync || l.synced >= l.appended {
		return nil
	}
	return l.syncToLocked(l.appended)
}

// Replay streams every durable entry, in append order, to fn.
func (l *Log) Replay(fn func(mark uint64, payload []byte) error) error {
	type view struct {
		path  string
		bytes int64
	}
	l.mu.Lock()
	var segs []view
	for _, sg := range l.sealed {
		segs = append(segs, view{sg.path, sg.bytes})
	}
	if l.active != nil {
		segs = append(segs, view{l.active.path, l.active.bytes})
	}
	l.mu.Unlock()
	for _, sg := range segs {
		data, err := os.ReadFile(sg.path)
		if err != nil {
			return fmt.Errorf("plog: %w", err)
		}
		if int64(len(data)) > sg.bytes {
			data = data[:sg.bytes]
		}
		off := int64(0)
		for off < int64(len(data)) {
			n, mark, payload, err := parseEntry(data[off:])
			if err != nil || n == 0 {
				break // validated at Open; a racing append may leave a short tail
			}
			if err := fn(mark, payload); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

// TruncateBelow deletes sealed segments whose entries all carry marks
// below watermark — log GC once a durability/apply watermark has moved
// past them. The active segment is never deleted. Returns the number of
// segments reclaimed.
func (l *Log) TruncateBelow(watermark uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.sealed[:0]
	removed := 0
	for _, sg := range l.sealed {
		// Entries in later segments may share the watermark mark;
		// delete only segments strictly below it.
		if sg.maxMark < watermark {
			if err := os.Remove(sg.path); err != nil {
				return removed, fmt.Errorf("plog: gc: %w", err)
			}
			l.stats.GCBytes += uint64(sg.bytes)
			removed++
			continue
		}
		kept = append(kept, sg)
	}
	l.sealed = append([]*segment(nil), kept...)
	return removed, nil
}

// Segments returns the current segment count (sealed + active).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.sealed)
	if l.active != nil {
		n++
	}
	return n
}

// Entries returns the total number of durable entries.
func (l *Log) Entries() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.opts.Dir }

// Close flushes, fsyncs, and releases the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var err error
	if !l.opts.NoSync && l.synced < l.appended {
		err = l.syncToLocked(l.appended)
	}
	l.closed = true
	close(l.syncerDone)
	l.syncCond.Broadcast()
	cerr := l.file.Close()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if cerr != nil {
		return fmt.Errorf("plog: %w", cerr)
	}
	return nil
}
