package expr

import (
	"testing"

	"taurus/internal/types"
)

func row(vals ...types.Datum) types.Row { return types.Row(vals) }

func TestComparisonOps(t *testing.T) {
	r := row(types.NewInt(5), types.NewInt(7))
	a, b := Col(0, "a"), Col(1, "b")
	cases := []struct {
		e    *Expr
		want int64
	}{
		{EQ(a, b), 0}, {NE(a, b), 1}, {LT(a, b), 1},
		{LE(a, b), 1}, {GT(a, b), 0}, {GE(a, b), 0},
		{EQ(a, ConstInt(5)), 1}, {GE(b, ConstInt(7)), 1},
	}
	for _, c := range cases {
		got := c.e.Eval(r)
		if got.IsNull() || got.I != c.want {
			t.Errorf("%s = %v, want %d", c.e, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	r := row(types.Null(), types.NewInt(1), types.NewInt(0))
	null, tru, fls := Col(0, "n"), Col(1, "t"), Col(2, "f")
	// NULL comparisons are NULL.
	if v := EQ(null, tru).Eval(r); !v.IsNull() {
		t.Errorf("NULL = 1 should be NULL, got %v", v)
	}
	// AND: false dominates NULL; OR: true dominates NULL.
	if v := And(fls, null).Eval(r); v.IsNull() || v.I != 0 {
		t.Errorf("false AND NULL = %v, want false", v)
	}
	if v := And(tru, null).Eval(r); !v.IsNull() {
		t.Errorf("true AND NULL = %v, want NULL", v)
	}
	if v := Or(tru, null).Eval(r); v.IsNull() || v.I != 1 {
		t.Errorf("true OR NULL = %v, want true", v)
	}
	if v := Or(fls, null).Eval(r); !v.IsNull() {
		t.Errorf("false OR NULL = %v, want NULL", v)
	}
	if v := Not(null).Eval(r); !v.IsNull() {
		t.Errorf("NOT NULL = %v, want NULL", v)
	}
	// EvalBool maps NULL to false.
	if EQ(null, tru).EvalBool(r) {
		t.Error("EvalBool(NULL) should be false")
	}
	// IS NULL / IS NOT NULL.
	if v := New(OpIsNull, null).Eval(r); v.I != 1 {
		t.Errorf("NULL IS NULL = %v", v)
	}
	if v := New(OpIsNotNull, tru).Eval(r); v.I != 1 {
		t.Errorf("1 IS NOT NULL = %v", v)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    *Expr
		want types.Datum
	}{
		{Add(ConstInt(2), ConstInt(3)), types.NewInt(5)},
		{Sub(ConstInt(2), ConstInt(3)), types.NewInt(-1)},
		{Mul(ConstInt(4), ConstInt(3)), types.NewInt(12)},
		{Div(ConstInt(7), ConstInt(2)), types.NewInt(3)},
		{Div(ConstInt(7), ConstInt(0)), types.Null()},
		// decimal: 1.50 * 0.10 = 0.15
		{Mul(Const(types.NewDecimal(150)), Const(types.NewDecimal(10))), types.NewDecimal(15)},
		// decimal + int promotes: 1.50 + 2 = 3.50
		{Add(Const(types.NewDecimal(150)), ConstInt(2)), types.NewDecimal(350)},
		// decimal / decimal: 1.00 / 0.50 = 2.00
		{Div(Const(types.NewDecimal(100)), Const(types.NewDecimal(50))), types.NewDecimal(200)},
		// float contaminates: 1 + 0.5 = 1.5
		{Add(ConstInt(1), Const(types.NewFloat(0.5))), types.NewFloat(1.5)},
		{New(OpNeg, ConstInt(5)), types.NewInt(-5)},
		{New(OpNeg, Const(types.NewFloat(2.5))), types.NewFloat(-2.5)},
	}
	for _, c := range cases {
		got := c.e.Eval(nil)
		if got.K != c.want.K || !types.Equal(got, c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("%s = %v (kind %v), want %v (kind %v)", c.e, got, got.K, c.want, c.want.K)
		}
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"promo burnished", "promo%", true},
		{"special requests", "%special%requests%", true},
		{"abc", "%d%", false},
		{"aaa", "a%a", true},
		{"ab", "a%b%c", false},
	}
	for _, c := range cases {
		if got := LikeMatch(c.s, c.p); got != c.want {
			t.Errorf("LikeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
	r := row(types.NewString("MEDIUM POLISHED"))
	if !Like(Col(0, "t"), ConstString("MEDIUM%")).EvalBool(r) {
		t.Error("LIKE via Eval failed")
	}
	if !NotLikeE(Col(0, "t"), ConstString("SMALL%")).EvalBool(r) {
		t.Error("NOT LIKE via Eval failed")
	}
}

func TestInAndBetween(t *testing.T) {
	r := row(types.NewInt(3), types.Null())
	if !In(Col(0, "x"), ConstInt(1), ConstInt(3), ConstInt(5)).EvalBool(r) {
		t.Error("3 IN (1,3,5) should be true")
	}
	if In(Col(0, "x"), ConstInt(1), ConstInt(2)).EvalBool(r) {
		t.Error("3 IN (1,2) should be false")
	}
	// x IN (1, NULL) is NULL when not matched.
	if v := In(Col(0, "x"), ConstInt(1), Const(types.Null())).Eval(r); !v.IsNull() {
		t.Errorf("3 IN (1, NULL) = %v, want NULL", v)
	}
	if v := In(Col(1, "n"), ConstInt(1)).Eval(r); !v.IsNull() {
		t.Errorf("NULL IN (1) = %v, want NULL", v)
	}
	if !Between(Col(0, "x"), ConstInt(1), ConstInt(5)).EvalBool(r) {
		t.Error("3 BETWEEN 1 AND 5")
	}
	if Between(Col(0, "x"), ConstInt(4), ConstInt(5)).EvalBool(r) {
		t.Error("3 BETWEEN 4 AND 5 should be false")
	}
}

func TestCaseExpr(t *testing.T) {
	// CASE WHEN x > 10 THEN 1 WHEN x > 5 THEN 2 ELSE 3 END
	c := New(OpCase,
		GT(Col(0, "x"), ConstInt(10)), ConstInt(1),
		GT(Col(0, "x"), ConstInt(5)), ConstInt(2),
		ConstInt(3))
	cases := []struct{ in, want int64 }{{20, 1}, {7, 2}, {3, 3}}
	for _, tc := range cases {
		if got := c.Eval(row(types.NewInt(tc.in))); got.I != tc.want {
			t.Errorf("CASE(%d) = %v, want %d", tc.in, got, tc.want)
		}
	}
}

func TestYearAndSubstr(t *testing.T) {
	d := types.DateFromYMD(1995, 6, 17)
	if got := Year(Const(d)).Eval(nil); got.I != 1995 {
		t.Errorf("YEAR(1995-06-17) = %v", got)
	}
	for _, yc := range []struct {
		y, m, d int
		want    int64
	}{{1970, 1, 1, 1970}, {1992, 2, 29, 1992}, {2000, 12, 31, 2000}, {1969, 12, 31, 1969}, {1900, 3, 1, 1900}} {
		got := Year(Const(types.DateFromYMD(yc.y, yc.m, yc.d))).Eval(nil)
		if got.I != yc.want {
			t.Errorf("YEAR(%d-%d-%d) = %v, want %d", yc.y, yc.m, yc.d, got, yc.want)
		}
	}
	s := New(OpSubstr, ConstString("13-MAIL"), ConstInt(1), ConstInt(2))
	if got := s.Eval(nil); got.S != "13" {
		t.Errorf("SUBSTRING = %q", got.S)
	}
	s2 := New(OpSubstr, ConstString("ab"), ConstInt(5), ConstInt(2))
	if got := s2.Eval(nil); got.S != "" {
		t.Errorf("out-of-range SUBSTRING = %q", got.S)
	}
	s3 := New(OpSubstr, ConstString("abcdef"), ConstInt(4), ConstInt(100))
	if got := s3.Eval(nil); got.S != "def" {
		t.Errorf("overlong SUBSTRING = %q", got.S)
	}
}

func TestColumnsRemapConjuncts(t *testing.T) {
	e := And(GT(Col(2, "a"), ConstInt(1)), LT(Col(5, "b"), Col(2, "a")))
	cols := e.ColumnSet()
	if len(cols) != 2 || !cols[2] || !cols[5] {
		t.Errorf("ColumnSet = %v", cols)
	}
	r := e.Remap(map[int]int{2: 0, 5: 1})
	rc := r.ColumnSet()
	if !rc[0] || !rc[1] || len(rc) != 2 {
		t.Errorf("Remap ColumnSet = %v", rc)
	}
	// Original unchanged.
	if oc := e.ColumnSet(); !oc[2] {
		t.Error("Remap mutated the original tree")
	}
	cj := Conjuncts(e)
	if len(cj) != 2 {
		t.Errorf("Conjuncts = %d, want 2", len(cj))
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) should be nil")
	}
	combined := AndAll(cj[0], nil, cj[1])
	if len(Conjuncts(combined)) != 2 {
		t.Error("AndAll should rebuild the conjunction")
	}
}

func TestStringRendering(t *testing.T) {
	// Mirrors the shape of the Listing 2 EXPLAIN output.
	joindate := Col(1, "worker.join_date")
	age := Col(0, "worker.age")
	d, _ := types.ParseDate("2010-01-01")
	e := AndAll(
		GE(joindate, Const(d)),
		LT(joindate, Const(d.AddMonths(12))),
		LT(age, ConstInt(40)),
	)
	got := e.String()
	want := "(((worker.join_date >= DATE'2010-01-01') AND (worker.join_date < DATE'2011-01-01')) AND (worker.age < 40))"
	if got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
	if got := In(Col(0, "x"), ConstInt(1), ConstString("a")).String(); got != "(x IN (1, 'a'))" {
		t.Errorf("IN String() = %s", got)
	}
}
