// Package expr implements the expression trees the query frontend builds
// for predicates, projections, and aggregate arguments, together with a
// tree-walking evaluator.
//
// The tree walker is deliberately the "classical" evaluation strategy the
// paper describes for stock MySQL ("traversing a tree of various expression
// nodes, and calling the necessary functions... slow because of the
// frequent function calls and cache misses", §V-B2). The NDP path compiles
// eligible trees into the register IR in internal/core/ir instead; the two
// must agree on every input, which is enforced by property tests.
package expr

import (
	"fmt"
	"strings"

	"taurus/internal/types"
)

// Op identifies an expression node type.
type Op uint8

const (
	// OpConst is a literal.
	OpConst Op = iota
	// OpCol references an input column by ordinal.
	OpCol
	// Comparison operators; evaluate to BOOL (int 0/1) or NULL.
	OpEQ
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	// Logical connectives with SQL three-valued logic.
	OpAnd
	OpOr
	OpNot
	// Arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	// OpLike is SQL LIKE with % and _ wildcards (left: string, right:
	// constant pattern).
	OpLike
	OpNotLike
	// OpIn tests membership of the first child in the remaining children.
	OpIn
	// OpBetween is x BETWEEN lo AND hi (children: x, lo, hi), inclusive.
	OpBetween
	// OpIsNull / OpIsNotNull test for SQL NULL.
	OpIsNull
	OpIsNotNull
	// OpCase is a searched CASE: children are (when1, then1, when2,
	// then2, ..., else). Always carries an else child (possibly NULL
	// constant).
	OpCase
	// OpYear extracts the year from a date.
	OpYear
	// OpSubstr is SUBSTRING(str, from, len) with 1-based from.
	OpSubstr
	// OpNeg is unary minus.
	OpNeg
)

var opNames = map[Op]string{
	OpConst: "const", OpCol: "col", OpEQ: "=", OpNE: "<>", OpLT: "<",
	OpLE: "<=", OpGT: ">", OpGE: ">=", OpAnd: "AND", OpOr: "OR",
	OpNot: "NOT", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpLike: "LIKE", OpNotLike: "NOT LIKE", OpIn: "IN", OpBetween: "BETWEEN",
	OpIsNull: "IS NULL", OpIsNotNull: "IS NOT NULL", OpCase: "CASE",
	OpYear: "YEAR", OpSubstr: "SUBSTRING", OpNeg: "-",
}

// Expr is one node of an expression tree.
type Expr struct {
	Op   Op
	Val  types.Datum // OpConst payload
	Col  int         // OpCol ordinal
	Name string      // optional column display name for EXPLAIN output
	Kids []*Expr
}

// Const builds a literal node.
func Const(d types.Datum) *Expr { return &Expr{Op: OpConst, Val: d} }

// ConstInt builds an integer literal node.
func ConstInt(v int64) *Expr { return Const(types.NewInt(v)) }

// ConstString builds a string literal node.
func ConstString(s string) *Expr { return Const(types.NewString(s)) }

// Col builds a column reference.
func Col(ordinal int, name string) *Expr {
	return &Expr{Op: OpCol, Col: ordinal, Name: name}
}

// New builds an interior node.
func New(op Op, kids ...*Expr) *Expr { return &Expr{Op: op, Kids: kids} }

// Convenience constructors keep planner code readable.
func EQ(a, b *Expr) *Expr           { return New(OpEQ, a, b) }
func NE(a, b *Expr) *Expr           { return New(OpNE, a, b) }
func LT(a, b *Expr) *Expr           { return New(OpLT, a, b) }
func LE(a, b *Expr) *Expr           { return New(OpLE, a, b) }
func GT(a, b *Expr) *Expr           { return New(OpGT, a, b) }
func GE(a, b *Expr) *Expr           { return New(OpGE, a, b) }
func And(a, b *Expr) *Expr          { return New(OpAnd, a, b) }
func Or(a, b *Expr) *Expr           { return New(OpOr, a, b) }
func Not(a *Expr) *Expr             { return New(OpNot, a) }
func Add(a, b *Expr) *Expr          { return New(OpAdd, a, b) }
func Sub(a, b *Expr) *Expr          { return New(OpSub, a, b) }
func Mul(a, b *Expr) *Expr          { return New(OpMul, a, b) }
func Div(a, b *Expr) *Expr          { return New(OpDiv, a, b) }
func Like(a, b *Expr) *Expr         { return New(OpLike, a, b) }
func NotLikeE(a, b *Expr) *Expr     { return New(OpNotLike, a, b) }
func Between(x, lo, hi *Expr) *Expr { return New(OpBetween, x, lo, hi) }
func In(x *Expr, list ...*Expr) *Expr {
	return New(OpIn, append([]*Expr{x}, list...)...)
}
func Year(d *Expr) *Expr { return New(OpYear, d) }

// AndAll combines the given predicates with AND; nil for empty input.
func AndAll(preds ...*Expr) *Expr {
	var out *Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = And(out, p)
		}
	}
	return out
}

// Bool datums used by the evaluator. SQL booleans are modelled as INT 0/1
// with NULL for unknown, exactly as MySQL does.
var (
	dTrue  = types.NewInt(1)
	dFalse = types.NewInt(0)
	dNull  = types.Null()
)

// Eval evaluates the expression against the row.
func (e *Expr) Eval(row types.Row) types.Datum {
	switch e.Op {
	case OpConst:
		return e.Val
	case OpCol:
		return row[e.Col]
	case OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE:
		a := e.Kids[0].Eval(row)
		b := e.Kids[1].Eval(row)
		if a.IsNull() || b.IsNull() {
			return dNull
		}
		c := types.Compare(a, b)
		var ok bool
		switch e.Op {
		case OpEQ:
			ok = c == 0
		case OpNE:
			ok = c != 0
		case OpLT:
			ok = c < 0
		case OpLE:
			ok = c <= 0
		case OpGT:
			ok = c > 0
		case OpGE:
			ok = c >= 0
		}
		if ok {
			return dTrue
		}
		return dFalse
	case OpAnd:
		a := e.Kids[0].Eval(row)
		if !a.IsNull() && a.I == 0 {
			return dFalse
		}
		b := e.Kids[1].Eval(row)
		if !b.IsNull() && b.I == 0 {
			return dFalse
		}
		if a.IsNull() || b.IsNull() {
			return dNull
		}
		return dTrue
	case OpOr:
		a := e.Kids[0].Eval(row)
		if !a.IsNull() && a.I != 0 {
			return dTrue
		}
		b := e.Kids[1].Eval(row)
		if !b.IsNull() && b.I != 0 {
			return dTrue
		}
		if a.IsNull() || b.IsNull() {
			return dNull
		}
		return dFalse
	case OpNot:
		a := e.Kids[0].Eval(row)
		if a.IsNull() {
			return dNull
		}
		if a.I != 0 {
			return dFalse
		}
		return dTrue
	case OpAdd, OpSub, OpMul, OpDiv:
		a := e.Kids[0].Eval(row)
		b := e.Kids[1].Eval(row)
		if a.IsNull() || b.IsNull() {
			return dNull
		}
		return Arith(e.Op, a, b)
	case OpNeg:
		a := e.Kids[0].Eval(row)
		if a.IsNull() {
			return dNull
		}
		switch a.K {
		case types.KindFloat:
			return types.NewFloat(-a.F)
		default:
			return types.Datum{K: a.K, I: -a.I}
		}
	case OpLike, OpNotLike:
		a := e.Kids[0].Eval(row)
		b := e.Kids[1].Eval(row)
		if a.IsNull() || b.IsNull() {
			return dNull
		}
		m := LikeMatch(a.S, b.S)
		if e.Op == OpNotLike {
			m = !m
		}
		if m {
			return dTrue
		}
		return dFalse
	case OpIn:
		x := e.Kids[0].Eval(row)
		if x.IsNull() {
			return dNull
		}
		sawNull := false
		for _, k := range e.Kids[1:] {
			v := k.Eval(row)
			if v.IsNull() {
				sawNull = true
				continue
			}
			if types.Compare(x, v) == 0 {
				return dTrue
			}
		}
		if sawNull {
			return dNull
		}
		return dFalse
	case OpBetween:
		x := e.Kids[0].Eval(row)
		lo := e.Kids[1].Eval(row)
		hi := e.Kids[2].Eval(row)
		if x.IsNull() || lo.IsNull() || hi.IsNull() {
			return dNull
		}
		if types.Compare(x, lo) >= 0 && types.Compare(x, hi) <= 0 {
			return dTrue
		}
		return dFalse
	case OpIsNull:
		if e.Kids[0].Eval(row).IsNull() {
			return dTrue
		}
		return dFalse
	case OpIsNotNull:
		if e.Kids[0].Eval(row).IsNull() {
			return dFalse
		}
		return dTrue
	case OpCase:
		n := len(e.Kids)
		for i := 0; i+1 < n; i += 2 {
			w := e.Kids[i].Eval(row)
			if !w.IsNull() && w.I != 0 {
				return e.Kids[i+1].Eval(row)
			}
		}
		return e.Kids[n-1].Eval(row)
	case OpYear:
		d := e.Kids[0].Eval(row)
		if d.IsNull() {
			return dNull
		}
		return types.NewInt(int64(YearOfEpochDays(int32(d.I))))
	case OpSubstr:
		s := e.Kids[0].Eval(row)
		from := e.Kids[1].Eval(row)
		length := e.Kids[2].Eval(row)
		if s.IsNull() || from.IsNull() || length.IsNull() {
			return dNull
		}
		str := s.S
		start := int(from.I) - 1
		if start < 0 || start >= len(str) {
			return types.NewString("")
		}
		end := start + int(length.I)
		if end > len(str) {
			end = len(str)
		}
		return types.NewString(str[start:end])
	default:
		panic(fmt.Sprintf("expr: cannot evaluate op %v", e.Op))
	}
}

// EvalBool evaluates a predicate and maps NULL to false, as WHERE does.
func (e *Expr) EvalBool(row types.Row) bool {
	v := e.Eval(row)
	return !v.IsNull() && v.I != 0
}

// Arith applies an arithmetic op to two non-null datums with MySQL-like
// type promotion: float wins; decimal-vs-int promotes to decimal; decimal
// multiply/divide rescale to keep DecimalScale fractional digits.
func Arith(op Op, a, b types.Datum) types.Datum {
	if a.K == types.KindFloat || b.K == types.KindFloat {
		x, y := a.Float(), b.Float()
		switch op {
		case OpAdd:
			return types.NewFloat(x + y)
		case OpSub:
			return types.NewFloat(x - y)
		case OpMul:
			return types.NewFloat(x * y)
		case OpDiv:
			if y == 0 {
				return dNull
			}
			return types.NewFloat(x / y)
		}
	}
	if a.K == types.KindDecimal || b.K == types.KindDecimal {
		x, y := toScaled(a), toScaled(b)
		switch op {
		case OpAdd:
			return types.NewDecimal(x + y)
		case OpSub:
			return types.NewDecimal(x - y)
		case OpMul:
			return types.NewDecimal(x * y / types.DecimalScale)
		case OpDiv:
			if y == 0 {
				return dNull
			}
			return types.NewDecimal(x * types.DecimalScale / y)
		}
	}
	// Pure integer (dates degrade to ints under arithmetic, like MySQL
	// datediff-style usage is not needed here).
	x, y := a.I, b.I
	switch op {
	case OpAdd:
		return types.NewInt(x + y)
	case OpSub:
		return types.NewInt(x - y)
	case OpMul:
		return types.NewInt(x * y)
	case OpDiv:
		if y == 0 {
			return dNull
		}
		return types.NewInt(x / y)
	}
	panic("expr: bad arith op")
}

func toScaled(d types.Datum) int64 {
	if d.K == types.KindDecimal {
		return d.I
	}
	return d.I * types.DecimalScale
}

// LikeMatch implements SQL LIKE matching with % (any run) and _ (any one
// byte). Patterns are matched bytewise, which is correct for the ASCII
// data TPC-H generates.
func LikeMatch(s, pattern string) bool {
	// Iterative two-pointer match with backtracking on the last %.
	var si, pi int
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, match = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// YearOfEpochDays converts days-since-1970 to a calendar year using the
// civil-from-days algorithm; shared with the IR runtime so both paths
// agree exactly.
func YearOfEpochDays(days int32) int {
	z := int64(days) + 719468
	era := z / 146097
	if z < 0 {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	m := mp + 3
	if mp >= 10 {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return int(y)
}

// Columns appends the ordinals of all columns referenced by e to dst,
// without deduplication.
func (e *Expr) Columns(dst []int) []int {
	if e.Op == OpCol {
		return append(dst, e.Col)
	}
	for _, k := range e.Kids {
		dst = k.Columns(dst)
	}
	return dst
}

// ColumnSet returns the distinct set of referenced ordinals.
func (e *Expr) ColumnSet() map[int]bool {
	set := make(map[int]bool)
	for _, c := range e.Columns(nil) {
		set[c] = true
	}
	return set
}

// Remap rewrites column ordinals through m (old ordinal → new ordinal) and
// returns a new tree; the input tree is not modified.
func (e *Expr) Remap(m map[int]int) *Expr {
	out := &Expr{Op: e.Op, Val: e.Val, Col: e.Col, Name: e.Name}
	if e.Op == OpCol {
		if n, ok := m[e.Col]; ok {
			out.Col = n
		}
	}
	if len(e.Kids) > 0 {
		out.Kids = make([]*Expr, len(e.Kids))
		for i, k := range e.Kids {
			out.Kids[i] = k.Remap(m)
		}
	}
	return out
}

// Conjuncts flattens a tree of ANDs into its conjunct list.
func Conjuncts(e *Expr) []*Expr {
	if e == nil {
		return nil
	}
	if e.Op == OpAnd {
		return append(Conjuncts(e.Kids[0]), Conjuncts(e.Kids[1])...)
	}
	return []*Expr{e}
}

// String renders the expression in SQL-ish syntax, used by EXPLAIN to
// print the "Using pushed NDP condition (...)" extras of Listing 2.
func (e *Expr) String() string {
	var b strings.Builder
	e.format(&b)
	return b.String()
}

func (e *Expr) format(b *strings.Builder) {
	switch e.Op {
	case OpConst:
		if e.Val.K == types.KindString {
			fmt.Fprintf(b, "'%s'", e.Val.S)
		} else if e.Val.K == types.KindDate {
			fmt.Fprintf(b, "DATE'%s'", e.Val.String())
		} else {
			b.WriteString(e.Val.String())
		}
	case OpCol:
		if e.Name != "" {
			b.WriteString(e.Name)
		} else {
			fmt.Fprintf(b, "#%d", e.Col)
		}
	case OpNot:
		b.WriteString("(NOT ")
		e.Kids[0].format(b)
		b.WriteByte(')')
	case OpNeg:
		b.WriteString("(-")
		e.Kids[0].format(b)
		b.WriteByte(')')
	case OpIsNull, OpIsNotNull:
		b.WriteByte('(')
		e.Kids[0].format(b)
		b.WriteByte(' ')
		b.WriteString(opNames[e.Op])
		b.WriteByte(')')
	case OpIn:
		b.WriteByte('(')
		e.Kids[0].format(b)
		b.WriteString(" IN (")
		for i, k := range e.Kids[1:] {
			if i > 0 {
				b.WriteString(", ")
			}
			k.format(b)
		}
		b.WriteString("))")
	case OpBetween:
		b.WriteByte('(')
		e.Kids[0].format(b)
		b.WriteString(" BETWEEN ")
		e.Kids[1].format(b)
		b.WriteString(" AND ")
		e.Kids[2].format(b)
		b.WriteByte(')')
	case OpCase:
		b.WriteString("CASE")
		n := len(e.Kids)
		for i := 0; i+1 < n; i += 2 {
			b.WriteString(" WHEN ")
			e.Kids[i].format(b)
			b.WriteString(" THEN ")
			e.Kids[i+1].format(b)
		}
		b.WriteString(" ELSE ")
		e.Kids[n-1].format(b)
		b.WriteString(" END")
	case OpYear:
		b.WriteString("YEAR(")
		e.Kids[0].format(b)
		b.WriteByte(')')
	case OpSubstr:
		b.WriteString("SUBSTRING(")
		e.Kids[0].format(b)
		b.WriteString(", ")
		e.Kids[1].format(b)
		b.WriteString(", ")
		e.Kids[2].format(b)
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		e.Kids[0].format(b)
		b.WriteByte(' ')
		b.WriteString(opNames[e.Op])
		b.WriteByte(' ')
		e.Kids[1].format(b)
		b.WriteByte(')')
	}
}
