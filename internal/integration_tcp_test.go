// Package internal_test runs the full stack over real TCP sockets: Log
// Stores and Page Stores behind cluster.Serve, the SAL using
// cluster.TCPClient — the deployment shape cmd/taurus-server provides.
package internal_test

import (
	"net"
	"testing"

	"taurus/internal/cluster"
	"taurus/internal/core"
	"taurus/internal/engine"
	"taurus/internal/expr"
	"taurus/internal/logstore"
	"taurus/internal/pagestore"
	"taurus/internal/sal"
	"taurus/internal/types"
)

func TestFullStackOverTCP(t *testing.T) {
	// Storage layer: 2 log stores + 2 page stores on loopback TCP.
	var logAddrs, psAddrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go cluster.Serve(l, logstore.New(l.Addr().String()))
		logAddrs = append(logAddrs, l.Addr().String())
	}
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go cluster.Serve(l, pagestore.New(l.Addr().String()))
		psAddrs = append(psAddrs, l.Addr().String())
	}
	client := cluster.NewTCPClient()
	defer client.Close()
	s, err := sal.New(sal.Config{
		Tenant: 1, Transport: client, LogStores: logAddrs, PageStores: psAddrs,
		ReplicationFactor: 2, PagesPerSlice: 32, Plugin: pagestore.PluginInnoDB,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.Config{SAL: s, PoolPages: 64, NDPMaxPagesLookAhead: 8})
	if err != nil {
		t.Fatal(err)
	}
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindInt},
	)
	tbl, err := eng.CreateTable("t", schema, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	tx := eng.Txm().Begin()
	for i := int64(0); i < 2000; i++ {
		if err := eng.Insert(tbl, tx, types.Row{types.NewInt(i), types.NewInt(i % 100)}); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	if err := eng.SAL().Flush(); err != nil {
		t.Fatal(err)
	}
	eng.Pool().Clear()

	// NDP scan over real sockets.
	pred := expr.LT(expr.Col(1, "v"), expr.ConstInt(10))
	count := 0
	err = eng.Scan(engine.ScanOptions{
		Index: tbl.Primary, Predicate: pred, Projection: []int{0},
		NDP: &engine.NDPPush{PushPredicate: true, PushProjection: true},
	}, func(types.Row, []core.AggState) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 200 {
		t.Fatalf("NDP scan over TCP returned %d rows, want 200", count)
	}
	// Regular scan agrees.
	eng.Pool().Clear()
	count2 := 0
	err = eng.Scan(engine.ScanOptions{Index: tbl.Primary, Predicate: pred}, func(types.Row, []core.AggState) error {
		count2++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count2 != count {
		t.Fatalf("regular %d vs NDP %d", count2, count)
	}
	if client.Stats.Snapshot().BatchReads == 0 {
		t.Error("expected batch reads over TCP")
	}
}
