// Package testutil wires a complete in-process Taurus cluster (log
// stores, page stores, SAL, engine) for tests and benchmarks.
package testutil

import (
	"fmt"
	"math/rand"

	"taurus/internal/cluster"
	"taurus/internal/engine"
	"taurus/internal/logstore"
	"taurus/internal/pagestore"
	"taurus/internal/sal"
	"taurus/internal/types"
)

// Cluster is a fully wired single-process Taurus deployment.
type Cluster struct {
	Transport  *cluster.InProc
	Engine     *engine.Engine
	SAL        *sal.SAL
	LogStores  []*logstore.Store
	PageStores []*pagestore.Store
	Controls   []*pagestore.ResourceControl
}

// Options configure NewCluster.
type Options struct {
	PageStores        int
	ReplicationFactor int
	PagesPerSlice     uint64
	PoolPages         int
	LookAhead         int
	// NDPWorkers/NDPQueue size each Page Store's resource control.
	NDPWorkers int
	NDPQueue   int
}

// NewCluster builds the deployment. Zero-valued options get defaults
// matching the paper's small test cluster (4 Page Stores, 3-way
// replication).
func NewCluster(opt Options) (*Cluster, error) {
	if opt.PageStores <= 0 {
		opt.PageStores = 4
	}
	if opt.ReplicationFactor <= 0 {
		opt.ReplicationFactor = 3
	}
	if opt.PagesPerSlice == 0 {
		opt.PagesPerSlice = 64
	}
	if opt.PoolPages <= 0 {
		opt.PoolPages = 4096
	}
	if opt.LookAhead <= 0 {
		opt.LookAhead = 64
	}
	if opt.NDPWorkers <= 0 {
		opt.NDPWorkers = 4
	}
	if opt.NDPQueue <= 0 {
		opt.NDPQueue = 1024
	}
	tr := cluster.NewInProc()
	c := &Cluster{Transport: tr}
	logNames := []string{"log1", "log2", "log3"}
	for _, n := range logNames {
		ls := logstore.New(n)
		c.LogStores = append(c.LogStores, ls)
		tr.Register(n, ls)
	}
	var psNames []string
	for i := 0; i < opt.PageStores; i++ {
		name := fmt.Sprintf("ps%d", i+1)
		rc := pagestore.NewResourceControl(opt.NDPWorkers, opt.NDPQueue)
		ps := pagestore.New(name, pagestore.WithResourceControl(rc))
		c.PageStores = append(c.PageStores, ps)
		c.Controls = append(c.Controls, rc)
		psNames = append(psNames, name)
		tr.Register(name, ps)
	}
	s, err := sal.New(sal.Config{
		Tenant: 1, Transport: tr, LogStores: logNames, PageStores: psNames,
		ReplicationFactor: opt.ReplicationFactor, PagesPerSlice: opt.PagesPerSlice,
		Plugin: pagestore.PluginInnoDB,
	})
	if err != nil {
		return nil, err
	}
	c.SAL = s
	eng, err := engine.New(engine.Config{
		SAL: s, PoolPages: opt.PoolPages, NDPMaxPagesLookAhead: opt.LookAhead,
	})
	if err != nil {
		return nil, err
	}
	c.Engine = eng
	return c, nil
}

// WorkerSchema is the salary-example table of the paper's Listing 1.
var WorkerSchema = types.NewSchema(
	types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "age", Kind: types.KindInt, NotNull: true},
	types.Column{Name: "join_date", Kind: types.KindDate, NotNull: true},
	types.Column{Name: "salary", Kind: types.KindDecimal, NotNull: true},
	types.Column{Name: "name", Kind: types.KindString},
)

// LoadWorkers creates and fills the worker table with n deterministic
// rows.
func (c *Cluster) LoadWorkers(n int) (*engine.Table, error) {
	tbl, err := c.Engine.CreateTable("worker", WorkerSchema, []int{0})
	if err != nil {
		return nil, err
	}
	tx := c.Engine.Txm().Begin()
	r := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(20 + r.Intn(40))),
			types.DateFromYMD(2005+r.Intn(10), 1+r.Intn(12), 1+r.Intn(28)),
			types.NewDecimal(int64(300000 + r.Intn(700000))),
			types.NewString(fmt.Sprintf("worker-%06d", i)),
		}
		if err := c.Engine.Insert(tbl, tx, row); err != nil {
			return nil, err
		}
	}
	tx.Commit()
	if err := c.SAL.Flush(); err != nil {
		return nil, err
	}
	return tbl, nil
}
