package buffer

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"taurus/internal/page"
)

func fetchFrom(created *int) func(uint64) (*page.Page, error) {
	return func(id uint64) (*page.Page, error) {
		if created != nil {
			*created++
		}
		return page.New(id, id%3, 0), nil
	}
}

func TestGetCachesPages(t *testing.T) {
	p := New(16, 4)
	created := 0
	for i := 0; i < 3; i++ {
		pg, err := p.Get(7, fetchFrom(&created))
		if err != nil {
			t.Fatal(err)
		}
		if pg.ID() != 7 {
			t.Fatal("wrong page")
		}
	}
	if created != 1 {
		t.Errorf("fetched %d times, want 1", created)
	}
	hits, misses, _ := p.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestGetPropagatesFetchError(t *testing.T) {
	p := New(16, 4)
	_, err := p.Get(1, func(uint64) (*page.Page, error) {
		return nil, fmt.Errorf("storage down")
	})
	if err == nil {
		t.Fatal("fetch error must propagate")
	}
}

func TestLRUEviction(t *testing.T) {
	p := New(8, 2)
	created := 0
	for i := uint64(1); i <= 12; i++ {
		if _, err := p.Get(i, fetchFrom(&created)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Resident() > 8 {
		t.Errorf("resident %d exceeds capacity", p.Resident())
	}
	_, _, evictions := p.Stats()
	if evictions == 0 {
		t.Error("expected evictions")
	}
	// The most recently used pages survive.
	if _, ok := p.Lookup(12); !ok {
		t.Error("page 12 should be resident")
	}
	if _, ok := p.Lookup(1); ok {
		t.Error("page 1 should have been evicted")
	}
}

func TestLookupDoesNotFetch(t *testing.T) {
	p := New(8, 2)
	if _, ok := p.Lookup(5); ok {
		t.Fatal("empty pool lookup should miss")
	}
	p.Insert(page.New(5, 1, 0))
	if pg, ok := p.Lookup(5); !ok || pg.ID() != 5 {
		t.Fatal("lookup after insert failed")
	}
}

func TestEvictExplicit(t *testing.T) {
	p := New(8, 2)
	p.Insert(page.New(5, 1, 0))
	p.Evict(5)
	if _, ok := p.Lookup(5); ok {
		t.Fatal("page should be gone")
	}
	p.Evict(99) // no-op
}

func TestInsertIdempotent(t *testing.T) {
	p := New(8, 2)
	a := page.New(5, 1, 0)
	b := page.New(5, 1, 0)
	p.Insert(a)
	p.Insert(b)
	got, _ := p.Lookup(5)
	if got != a {
		t.Error("second insert must not replace the first copy")
	}
	if p.Resident() != 1 {
		t.Errorf("resident = %d", p.Resident())
	}
}

func TestNDPAllocationCap(t *testing.T) {
	p := New(64, 3)
	for i := 0; i < 3; i++ {
		if err := p.AllocNDP(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AllocNDP(); err == nil {
		t.Fatal("cap must be enforced")
	}
	if p.NDPInUse() != 3 {
		t.Errorf("NDPInUse = %d", p.NDPInUse())
	}
	p.ReleaseNDP()
	if err := p.AllocNDP(); err != nil {
		t.Fatal("release should free capacity")
	}
	for i := 0; i < 10; i++ {
		p.ReleaseNDP() // over-release must not underflow
	}
	if p.NDPInUse() != 0 {
		t.Errorf("NDPInUse = %d after releases", p.NDPInUse())
	}
}

func TestNDPPagesEvictRegularPages(t *testing.T) {
	// Pool of 8: fill with 8 regular pages, then NDP allocations must
	// push regular pages out.
	p := New(8, 8)
	for i := uint64(1); i <= 8; i++ {
		p.Insert(page.New(i, 1, 0))
	}
	for i := 0; i < 4; i++ {
		if err := p.AllocNDP(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Resident()+p.NDPInUse() > 8 {
		t.Errorf("resident %d + ndp %d exceeds capacity", p.Resident(), p.NDPInUse())
	}
}

func TestNDPPagesInvisibleToLookup(t *testing.T) {
	// NDP pages are never inserted into the hash map: allocation is
	// capacity accounting only, so Lookup can never observe them.
	p := New(8, 4)
	if err := p.AllocNDP(); err != nil {
		t.Fatal(err)
	}
	if p.Resident() != 0 {
		t.Error("NDP allocation must not appear in the page map")
	}
}

func TestResidentByIndex(t *testing.T) {
	p := New(32, 4)
	for i := uint64(1); i <= 9; i++ {
		p.Insert(page.New(i, i%3, 0)) // indexes 0,1,2 get 3 pages each
	}
	byIdx := p.ResidentByIndex()
	for idx := uint64(0); idx < 3; idx++ {
		if byIdx[idx] != 3 {
			t.Errorf("index %d: %d pages, want 3", idx, byIdx[idx])
		}
	}
}

// TestSingleflightCollapsesConcurrentMisses races many goroutines at a
// cold page and verifies exactly one fetch reaches the "Page Store".
func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	p := New(1024, 4)
	var fetches atomic.Int64
	arrived := make(chan struct{})
	release := make(chan struct{})
	fetch := func(id uint64) (*page.Page, error) {
		if fetches.Add(1) == 1 {
			close(arrived)
		}
		<-release
		return page.New(id, 1, 0), nil
	}
	const callers = 16
	var wg sync.WaitGroup
	pages := make([]*page.Page, callers)
	get := func(i int) {
		defer wg.Done()
		pg, err := p.Get(99, fetch)
		if err != nil {
			t.Error(err)
			return
		}
		pages[i] = pg
	}
	wg.Add(1)
	go get(0)
	<-arrived // the winning fetch is in flight; joiners must now wait
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go get(i)
	}
	// Hold the fetch open until every joiner is parked on it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var shared uint64
		for _, s := range p.ShardStatsSnapshot() {
			shared += s.SingleflightShared
		}
		if shared == callers-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d joiners reached the in-flight fetch", shared, callers-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if n := fetches.Load(); n != 1 {
		t.Fatalf("%d fetches for one page, want 1 (singleflight)", n)
	}
	for i := 1; i < callers; i++ {
		if pages[i] != pages[0] {
			t.Fatal("joiners must receive the winner's page")
		}
	}
	var shared uint64
	for _, s := range p.ShardStatsSnapshot() {
		shared += s.SingleflightShared
	}
	if shared != callers-1 {
		t.Fatalf("SingleflightShared = %d, want %d", shared, callers-1)
	}
}

// TestSingleflightErrorPropagates delivers the winner's fetch error to
// every joiner without caching it.
func TestSingleflightErrorPropagates(t *testing.T) {
	p := New(1024, 4)
	var fetches atomic.Int64
	boom := fmt.Errorf("storage down")
	var wg sync.WaitGroup
	errCount := atomic.Int64{}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Get(7, func(uint64) (*page.Page, error) {
				fetches.Add(1)
				return nil, boom
			}); err != nil {
				errCount.Add(1)
			}
		}()
	}
	wg.Wait()
	if errCount.Load() != 8 {
		t.Fatalf("%d of 8 callers saw the error", errCount.Load())
	}
	// The failure is not cached: the next Get fetches again.
	before := fetches.Load()
	if _, err := p.Get(7, fetchFrom(nil)); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Lookup(7); !ok {
		t.Fatal("page should be cached after the successful retry")
	}
	_ = before
}

// TestLargePoolShards verifies big pools spread across shards and keep
// capacity and stats accounting consistent under concurrent traffic.
func TestLargePoolShards(t *testing.T) {
	p := New(4096, 8)
	if p.Shards() < 2 {
		t.Skip("single-CPU environment: pool stays unsharded")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := uint64(0); i < 2000; i++ {
				id := i*8 + uint64(g)
				if _, err := p.Get(id, fetchFrom(nil)); err != nil {
					t.Error(err)
					return
				}
				p.Lookup(id)
			}
		}(g)
	}
	wg.Wait()
	if p.Resident() > 4096 {
		t.Fatalf("resident %d exceeds capacity", p.Resident())
	}
	shardStats := p.ShardStatsSnapshot()
	populated := 0
	total := 0
	for _, s := range shardStats {
		if s.Resident > 0 {
			populated++
		}
		total += s.Resident
	}
	if populated < len(shardStats)/2 {
		t.Fatalf("only %d of %d shards populated — IDs are not spreading", populated, len(shardStats))
	}
	if total != p.Resident() {
		t.Fatalf("shard residency %d != pool residency %d", total, p.Resident())
	}
	hits, misses, _ := p.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

// TestSmallPoolSingleShard pins the back-compat behavior: tiny pools
// keep one shard (exact global LRU).
func TestSmallPoolSingleShard(t *testing.T) {
	if got := New(64, 4).Shards(); got != 1 {
		t.Fatalf("64-page pool has %d shards, want 1", got)
	}
}

func TestClear(t *testing.T) {
	p := New(8, 2)
	p.Insert(page.New(1, 1, 0))
	p.Clear()
	if p.Resident() != 0 {
		t.Error("Clear should drop everything")
	}
	if _, ok := p.Lookup(1); ok {
		t.Error("page survived Clear")
	}
}

// TestGetAsOfStaleJoinRefetches pins the miss path's read-your-writes
// plumbing: a caller whose page-level staged-LSN bound is newer than an
// in-flight fetch's bound must NOT join it — it fetches independently
// (counted as a stale refetch), because the in-flight result may
// predate records the caller has to see.
func TestGetAsOfStaleJoinRefetches(t *testing.T) {
	p := New(64, 8)
	firstEntered := make(chan struct{})
	release := make(chan struct{})
	var fetches atomic.Int32
	slowFetch := func(id uint64) (*page.Page, error) {
		if fetches.Add(1) == 1 {
			close(firstEntered)
			<-release
		}
		return page.New(id, 1, 0), nil
	}
	done1 := make(chan struct{})
	go func() {
		defer close(done1)
		if _, err := p.GetAsOf(42, func() uint64 { return 5 }, slowFetch); err != nil {
			t.Error(err)
		}
	}()
	<-firstEntered
	// A reader content with the in-flight bound joins it (and blocks
	// until the gated fetch completes).
	doneJoin := make(chan struct{})
	go func() {
		defer close(doneJoin)
		if _, err := p.GetAsOf(42, func() uint64 { return 5 }, slowFetch); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-doneJoin:
		t.Fatal("joiner returned before the in-flight fetch completed")
	case <-time.After(50 * time.Millisecond):
	}
	// Same page, but this reader requires staged LSN 9 > the in-flight
	// fetch's bound 5: it must bypass the join and fetch on its own,
	// without waiting for the gated first fetch.
	doneFresh := make(chan struct{})
	go func() {
		defer close(doneFresh)
		if _, err := p.GetAsOf(42, func() uint64 { return 9 }, slowFetch); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-doneFresh:
	case <-time.After(2 * time.Second):
		t.Fatal("fresh-bound reader blocked behind a stale in-flight fetch")
	}
	close(release)
	<-done1
	<-doneJoin
	var stale, shared uint64
	for _, s := range p.ShardStatsSnapshot() {
		stale += s.StaleRefetches
		shared += s.SingleflightShared
	}
	if stale != 1 {
		t.Fatalf("stale refetches = %d, want 1", stale)
	}
	if shared != 1 {
		t.Fatalf("singleflight joins = %d, want 1", shared)
	}
	if got := fetches.Load(); got != 2 {
		t.Fatalf("page store fetches = %d, want 2 (first + stale bypass)", got)
	}
}

// TestInvalidateFloorBlocksStaleInsert pins the read-replica
// invalidation contract: after Invalidate(page, floor), an image whose
// page LSN is below the floor is neither kept resident nor re-cached by
// a fetch that was already in flight when the invalidation ran — only a
// fresh-enough image clears the floor.
func TestInvalidateFloorBlocksStaleInsert(t *testing.T) {
	p := New(16, 4)
	stale := page.New(7, 1, 0)
	stale.SetLSN(5)
	p.Insert(stale)
	p.Invalidate(7, 10)
	if _, ok := p.Lookup(7); ok {
		t.Fatal("stale image survived Invalidate")
	}
	// A racing fetch bound to the old snapshot completes after the
	// invalidation: its image must not enter the cache (the caller may
	// still use it for its own, older snapshot).
	got, err := p.GetAsOf(7, func() uint64 { return 5 }, func(id uint64) (*page.Page, error) {
		pg := page.New(id, 1, 0)
		pg.SetLSN(5)
		return pg, nil
	})
	if err != nil || got.LSN() != 5 {
		t.Fatalf("stale fetch result: %v %v", got, err)
	}
	if _, ok := p.Lookup(7); ok {
		t.Fatal("stale fetch re-cached a sub-floor image")
	}
	// A fresh image at or above the floor caches normally and clears
	// the floor.
	fresh := page.New(7, 1, 0)
	fresh.SetLSN(12)
	if pg, err := p.Get(7, func(id uint64) (*page.Page, error) { return fresh, nil }); err != nil || pg.LSN() != 12 {
		t.Fatalf("fresh fetch: %v %v", pg, err)
	}
	if pg, ok := p.Lookup(7); !ok || pg.LSN() != 12 {
		t.Fatal("fresh image not cached after clearing the floor")
	}
	// An Invalidate floor the resident image already satisfies keeps it.
	p.Invalidate(7, 12)
	if _, ok := p.Lookup(7); !ok {
		t.Fatal("Invalidate evicted an image already at the floor")
	}
}
