package buffer

import (
	"fmt"
	"testing"

	"taurus/internal/page"
)

func fetchFrom(created *int) func(uint64) (*page.Page, error) {
	return func(id uint64) (*page.Page, error) {
		if created != nil {
			*created++
		}
		return page.New(id, id%3, 0), nil
	}
}

func TestGetCachesPages(t *testing.T) {
	p := New(16, 4)
	created := 0
	for i := 0; i < 3; i++ {
		pg, err := p.Get(7, fetchFrom(&created))
		if err != nil {
			t.Fatal(err)
		}
		if pg.ID() != 7 {
			t.Fatal("wrong page")
		}
	}
	if created != 1 {
		t.Errorf("fetched %d times, want 1", created)
	}
	hits, misses, _ := p.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestGetPropagatesFetchError(t *testing.T) {
	p := New(16, 4)
	_, err := p.Get(1, func(uint64) (*page.Page, error) {
		return nil, fmt.Errorf("storage down")
	})
	if err == nil {
		t.Fatal("fetch error must propagate")
	}
}

func TestLRUEviction(t *testing.T) {
	p := New(8, 2)
	created := 0
	for i := uint64(1); i <= 12; i++ {
		if _, err := p.Get(i, fetchFrom(&created)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Resident() > 8 {
		t.Errorf("resident %d exceeds capacity", p.Resident())
	}
	_, _, evictions := p.Stats()
	if evictions == 0 {
		t.Error("expected evictions")
	}
	// The most recently used pages survive.
	if _, ok := p.Lookup(12); !ok {
		t.Error("page 12 should be resident")
	}
	if _, ok := p.Lookup(1); ok {
		t.Error("page 1 should have been evicted")
	}
}

func TestLookupDoesNotFetch(t *testing.T) {
	p := New(8, 2)
	if _, ok := p.Lookup(5); ok {
		t.Fatal("empty pool lookup should miss")
	}
	p.Insert(page.New(5, 1, 0))
	if pg, ok := p.Lookup(5); !ok || pg.ID() != 5 {
		t.Fatal("lookup after insert failed")
	}
}

func TestEvictExplicit(t *testing.T) {
	p := New(8, 2)
	p.Insert(page.New(5, 1, 0))
	p.Evict(5)
	if _, ok := p.Lookup(5); ok {
		t.Fatal("page should be gone")
	}
	p.Evict(99) // no-op
}

func TestInsertIdempotent(t *testing.T) {
	p := New(8, 2)
	a := page.New(5, 1, 0)
	b := page.New(5, 1, 0)
	p.Insert(a)
	p.Insert(b)
	got, _ := p.Lookup(5)
	if got != a {
		t.Error("second insert must not replace the first copy")
	}
	if p.Resident() != 1 {
		t.Errorf("resident = %d", p.Resident())
	}
}

func TestNDPAllocationCap(t *testing.T) {
	p := New(64, 3)
	for i := 0; i < 3; i++ {
		if err := p.AllocNDP(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AllocNDP(); err == nil {
		t.Fatal("cap must be enforced")
	}
	if p.NDPInUse() != 3 {
		t.Errorf("NDPInUse = %d", p.NDPInUse())
	}
	p.ReleaseNDP()
	if err := p.AllocNDP(); err != nil {
		t.Fatal("release should free capacity")
	}
	for i := 0; i < 10; i++ {
		p.ReleaseNDP() // over-release must not underflow
	}
	if p.NDPInUse() != 0 {
		t.Errorf("NDPInUse = %d after releases", p.NDPInUse())
	}
}

func TestNDPPagesEvictRegularPages(t *testing.T) {
	// Pool of 8: fill with 8 regular pages, then NDP allocations must
	// push regular pages out.
	p := New(8, 8)
	for i := uint64(1); i <= 8; i++ {
		p.Insert(page.New(i, 1, 0))
	}
	for i := 0; i < 4; i++ {
		if err := p.AllocNDP(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Resident()+p.NDPInUse() > 8 {
		t.Errorf("resident %d + ndp %d exceeds capacity", p.Resident(), p.NDPInUse())
	}
}

func TestNDPPagesInvisibleToLookup(t *testing.T) {
	// NDP pages are never inserted into the hash map: allocation is
	// capacity accounting only, so Lookup can never observe them.
	p := New(8, 4)
	if err := p.AllocNDP(); err != nil {
		t.Fatal(err)
	}
	if p.Resident() != 0 {
		t.Error("NDP allocation must not appear in the page map")
	}
}

func TestResidentByIndex(t *testing.T) {
	p := New(32, 4)
	for i := uint64(1); i <= 9; i++ {
		p.Insert(page.New(i, i%3, 0)) // indexes 0,1,2 get 3 pages each
	}
	byIdx := p.ResidentByIndex()
	for idx := uint64(0); idx < 3; idx++ {
		if byIdx[idx] != 3 {
			t.Errorf("index %d: %d pages, want 3", idx, byIdx[idx])
		}
	}
}

func TestClear(t *testing.T) {
	p := New(8, 2)
	p.Insert(page.New(1, 1, 0))
	p.Clear()
	if p.Resident() != 0 {
		t.Error("Clear should drop everything")
	}
	if _, ok := p.Lookup(1); ok {
		t.Error("page survived Clear")
	}
}
