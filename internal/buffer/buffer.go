// Package buffer implements the compute node's buffer pool and its NDP
// interaction rules (§IV-C3): regular pages live in the hash map and LRU
// list and are shared by all queries; NDP pages are allocated from the
// pool's free capacity but are "not inserted into such buffer pool
// management data structures as hash map, LRU list, flush list" — they
// are private to the scan cursor that requested them, and their count is
// capped (the innodb_ndp_max_pages_look_ahead parameter) so regular scans
// are not deprived of memory.
//
// The pool is sharded: page IDs hash onto independent shards, each with
// its own lock, hash map, and LRU list, so concurrent scans stop
// serializing on one mutex. Small pools (under 64 pages per shard)
// collapse to a single shard, which preserves the exact global-LRU
// behavior the paper's buffer-pool experiment measures. Concurrent
// misses on the same page are collapsed by a per-key singleflight: one
// caller fetches from the Page Store, the rest wait for its result.
package buffer

import (
	"container/list"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"taurus/internal/page"
)

// DefaultNDPMaxPagesLookAhead mirrors the paper's new MySQL parameter
// bounding an NDP scan's memory footprint ("typically around a thousand
// pages" per batch).
const DefaultNDPMaxPagesLookAhead = 1024

// minPagesPerShard keeps shards big enough that per-shard LRU remains a
// sane approximation of global LRU.
const minPagesPerShard = 64

// maxFloorsPerShard bounds the per-shard invalidation-floor map (see
// Pool.Invalidate); beyond it the set is wiped under an epoch bump.
const maxFloorsPerShard = 4096

// Pool is the buffer pool. All pages it caches are clean: mutations are
// logged through the SAL before being applied to cached copies, so
// eviction never loses data.
type Pool struct {
	capacity int
	ndpCap   int

	shards []*shard
	mask   uint64

	// epoch bumps on every Clear: a fetch that started before a Clear
	// must not re-cache its (pre-Clear) image afterwards — on a read
	// replica a resync has advanced the visible LSN past records the
	// image misses, and on the master the experiments rely on Clear
	// actually starting cold.
	epoch atomic.Uint64

	// ndpInUse is global: NDP capacity accounting spans shards.
	ndpInUse atomic.Int64
	// resident mirrors the total cached page count (for capacity checks
	// without sweeping every shard).
	resident atomic.Int64
	// rr rotates NDP-pressure evictions across shards.
	rr atomic.Uint64
}

type shard struct {
	mu sync.Mutex

	capacity int // regular-page budget of this shard

	frames map[uint64]*frame
	lru    *list.List // front = most recent

	inflight map[uint64]*flight // singleflight: pageID → pending fetch

	// floors are per-page minimum LSNs set by Invalidate: an image
	// whose page LSN is below its floor must not (re)enter the cache —
	// it predates records a read-replica has already made visible. An
	// entry is cleared when a fresh-enough image lands.
	floors map[uint64]uint64

	hits      uint64
	misses    uint64
	evictions uint64
	sfShared  uint64 // misses served by another caller's in-flight fetch
	// staleRefetches counts misses that could NOT join an in-flight
	// fetch because it was bound to an older staged LSN than the
	// caller's read-your-writes requirement.
	staleRefetches uint64
}

type frame struct {
	pg  *page.Page
	elt *list.Element
}

// flight is one in-progress fetch other callers can wait on. bound is
// the read-your-writes LSN the fetcher's wait covered: a joiner that
// needs a higher staged LSN must fetch for itself instead of sharing a
// result that may predate its own writes.
type flight struct {
	done  chan struct{}
	pg    *page.Page
	err   error
	bound uint64
}

// New creates a pool holding up to capacity regular pages and up to
// ndpCap concurrently-live NDP pages.
func New(capacity, ndpCap int) *Pool {
	if capacity < 8 {
		capacity = 8
	}
	if ndpCap <= 0 {
		ndpCap = DefaultNDPMaxPagesLookAhead
	}
	nshards := 1
	for nshards < 2*runtime.GOMAXPROCS(0) && capacity/(nshards*2) >= minPagesPerShard {
		nshards *= 2
	}
	p := &Pool{
		capacity: capacity,
		ndpCap:   ndpCap,
		shards:   make([]*shard, nshards),
		mask:     uint64(nshards - 1),
	}
	for i := range p.shards {
		p.shards[i] = &shard{
			capacity: capacity / nshards,
			frames:   make(map[uint64]*frame),
			lru:      list.New(),
			inflight: make(map[uint64]*flight),
		}
	}
	return p
}

// Shards reports the shard count.
func (p *Pool) Shards() int { return len(p.shards) }

// shardOf hashes a page ID onto its shard. Sequential page IDs (the
// common allocation pattern) must spread, so the ID is mixed first.
func (p *Pool) shardOf(pageID uint64) *shard {
	h := pageID * 0x9E3779B97F4A7C15 // Fibonacci hashing
	h ^= h >> 29
	return p.shards[h&p.mask]
}

// ndpShare is the per-shard slice of the live NDP page count, used in
// per-shard eviction decisions (exact for the single-shard case).
func (p *Pool) ndpShare() int {
	return (int(p.ndpInUse.Load()) + len(p.shards) - 1) / len(p.shards)
}

// Get returns the cached page, or fetches, caches, and returns it. A
// racing Get of the same page joins the first caller's fetch instead of
// issuing a duplicate Page Store read.
func (p *Pool) Get(pageID uint64, fetch func(pageID uint64) (*page.Page, error)) (*page.Page, error) {
	return p.GetAsOf(pageID, nil, fetch)
}

// GetAsOf is Get with a page-level read-your-writes bound plumbed
// through the miss path. asOf (lazily evaluated, only on a miss)
// returns the page's highest staged-but-not-yet-applied LSN — the LSN
// the fetch must wait for before reading the Page Store. Cache hits
// skip it entirely: the compute node applies its own writes to cached
// copies, so a resident page is always fresh. A caller that joins an
// in-flight fetch whose bound is older than its own re-fetches instead
// of accepting a result that may predate records it needs to see.
func (p *Pool) GetAsOf(pageID uint64, asOf func() uint64, fetch func(pageID uint64) (*page.Page, error)) (*page.Page, error) {
	epoch := p.epoch.Load()
	sh := p.shardOf(pageID)
	sh.mu.Lock()
	if f, ok := sh.frames[pageID]; ok {
		sh.lru.MoveToFront(f.elt)
		sh.hits++
		pg := f.pg
		sh.mu.Unlock()
		return pg, nil
	}
	var need uint64
	if asOf != nil {
		// Evaluated under the shard lock so the comparison against an
		// in-flight fetch's bound is well ordered; the callback is a
		// couple of atomic/map reads.
		need = asOf()
	}
	if fl, ok := sh.inflight[pageID]; ok && fl.bound >= need {
		sh.sfShared++
		sh.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		return fl.pg, nil
	} else if ok {
		// The in-flight fetch waited for an older staged LSN than this
		// caller requires (a writer staged more for the page since it
		// started): fetch independently rather than serve a stale join.
		sh.staleRefetches++
		sh.mu.Unlock()
		pg, err := fetch(pageID)
		if err == nil {
			pg = p.insertNewer(pg, epoch)
		}
		return pg, err
	}
	fl := &flight{done: make(chan struct{}), bound: need}
	sh.inflight[pageID] = fl
	sh.misses++
	sh.mu.Unlock()
	// Fetch outside the lock; joiners wait on fl.done.
	pg, err := fetch(pageID)
	if err == nil {
		pg = p.insertNewer(pg, epoch)
	}
	fl.pg, fl.err = pg, err
	sh.mu.Lock()
	delete(sh.inflight, pageID)
	sh.mu.Unlock()
	close(fl.done)
	return pg, err
}

// Lookup returns the cached page without fetching. This is the check a
// batch read performs before adding a leaf to the I/O request: "Before a
// leaf page ID is added to a batch read request, a check is made whether
// the page already exists in the buffer pool" (§IV-C4).
func (p *Pool) Lookup(pageID uint64) (*page.Page, bool) {
	sh := p.shardOf(pageID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.frames[pageID]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(f.elt)
	sh.hits++
	return f.pg, true
}

// Insert caches a page (idempotent), evicting LRU pages as needed.
func (p *Pool) Insert(pg *page.Page) {
	p.insertFrame(pg, false, p.epoch.Load())
}

// insertNewer caches a fetched page, resolving races between concurrent
// fetches of the same page by page LSN: if a frame is already resident,
// the higher-LSN image wins (a stale-bound fetch completing AFTER a
// fresh one must not shadow it, and vice versa). epoch is the pool
// epoch observed before the fetch started. Returns the resident image.
func (p *Pool) insertNewer(pg *page.Page, epoch uint64) *page.Page {
	return p.insertFrame(pg, true, epoch)
}

// insertFrame is the shared insert path: existing frames either win
// (plain Insert) or lose to a higher-LSN image (replaceNewer); a new
// frame evicts LRU pages for space. An image is rejected (returned
// uncached) when a Clear intervened since epoch was observed or when
// the page's invalidation floor says it is stale.
func (p *Pool) insertFrame(pg *page.Page, replaceNewer bool, epoch uint64) *page.Page {
	id := pg.ID()
	sh := p.shardOf(id)
	ndpShare := p.ndpShare()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if epoch != p.epoch.Load() {
		// The pool was Cleared while this image was being fetched; the
		// caller may still read it, but it must not repopulate the
		// cache (on a replica the visible LSN may have jumped a
		// resync's worth of records this image predates).
		return pg
	}
	if floor, ok := sh.floors[id]; ok {
		if pg.LSN() < floor {
			// The image predates an invalidation (a fetch that started
			// before records now required became visible): hand it to
			// the caller uncached so the next reader refetches fresh.
			return pg
		}
		delete(sh.floors, id)
	}
	if f, ok := sh.frames[id]; ok {
		if replaceNewer && pg.LSN() > f.pg.LSN() {
			f.pg = pg
		}
		return f.pg
	}
	p.evictForSpaceLocked(sh, ndpShare)
	f := &frame{pg: pg}
	f.elt = sh.lru.PushFront(id)
	sh.frames[id] = f
	p.resident.Add(1)
	return pg
}

// evictForSpaceLocked evicts from the shard's LRU tail until a new page
// (plus the shard's share of live NDP pages) fits. Caller holds sh.mu.
func (p *Pool) evictForSpaceLocked(sh *shard, ndpShare int) {
	for len(sh.frames)+ndpShare >= sh.capacity {
		back := sh.lru.Back()
		if back == nil {
			return // nothing evictable; NDP cap guards this case
		}
		id := back.Value.(uint64)
		sh.lru.Remove(back)
		delete(sh.frames, id)
		sh.evictions++
		p.resident.Add(-1)
	}
}

// Evict removes a page from the cache (no-op if absent).
func (p *Pool) Evict(pageID uint64) {
	sh := p.shardOf(pageID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f, ok := sh.frames[pageID]; ok {
		sh.lru.Remove(f.elt)
		delete(sh.frames, pageID)
		sh.evictions++
		p.resident.Add(-1)
	}
}

// Invalidate is Evict with a floor: besides dropping any resident image
// older than floorLSN, it remembers the floor so an image predating it
// can never (re)enter the cache — closing the race where a fetch
// started before the invalidation completes after it and would
// otherwise cache the stale image permanently. Read replicas call it
// when records touching the page become visible; the floor is the
// highest such record's LSN, which any fresh-enough image's page LSN
// reaches.
func (p *Pool) Invalidate(pageID, floorLSN uint64) {
	sh := p.shardOf(pageID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f, ok := sh.frames[pageID]; ok && f.pg.LSN() < floorLSN {
		sh.lru.Remove(f.elt)
		delete(sh.frames, pageID)
		sh.evictions++
		p.resident.Add(-1)
	}
	if sh.floors == nil {
		sh.floors = make(map[uint64]uint64)
	}
	if floorLSN > sh.floors[pageID] {
		sh.floors[pageID] = floorLSN
	}
	if len(sh.floors) > maxFloorsPerShard {
		// Floors clear when a fresh-enough image lands; pages
		// invalidated but never read again would accumulate entries
		// forever on a long-running replica. Dropping a floor is only
		// safe if no in-flight fetch can slip a stale image in behind
		// it — so wipe the whole set under an epoch bump, which blocks
		// every in-flight insert. Resident frames stay: anything
		// resident already satisfied its floor.
		p.epoch.Add(1)
		sh.floors = make(map[uint64]uint64)
	}
}

// InvalidateBatch applies Invalidate to many pages at once, grouping by
// shard so each shard lock is taken once per batch instead of once per
// page. Push-mode replicas drain a whole stream frame's invalidations
// through here. floors[i] corresponds to pageIDs[i].
func (p *Pool) InvalidateBatch(pageIDs []uint64, floors []uint64) {
	byShard := make(map[*shard][]int, 4)
	for i, pageID := range pageIDs {
		sh := p.shardOf(pageID)
		byShard[sh] = append(byShard[sh], i)
	}
	for sh, idxs := range byShard {
		sh.mu.Lock()
		for _, i := range idxs {
			pageID, floorLSN := pageIDs[i], floors[i]
			if f, ok := sh.frames[pageID]; ok && f.pg.LSN() < floorLSN {
				sh.lru.Remove(f.elt)
				delete(sh.frames, pageID)
				sh.evictions++
				p.resident.Add(-1)
			}
			if sh.floors == nil {
				sh.floors = make(map[uint64]uint64)
			}
			if floorLSN > sh.floors[pageID] {
				sh.floors[pageID] = floorLSN
			}
		}
		if len(sh.floors) > maxFloorsPerShard {
			p.epoch.Add(1)
			sh.floors = make(map[uint64]uint64)
		}
		sh.mu.Unlock()
	}
}

// AllocNDP reserves capacity for one NDP page. It fails when the NDP cap
// is reached — the scan must release pages before reading more, which is
// exactly the paper's bounded look-ahead. Regular pages are evicted if
// the pool is full, never the other way around.
func (p *Pool) AllocNDP() error {
	for {
		n := p.ndpInUse.Load()
		if int(n) >= p.ndpCap {
			return fmt.Errorf("buffer: NDP page cap %d reached", p.ndpCap)
		}
		if p.ndpInUse.CompareAndSwap(n, n+1) {
			break
		}
	}
	// Make room globally: evict LRU tails round-robin across shards
	// until the NDP page fits beside the resident set.
	for int(p.resident.Load())+int(p.ndpInUse.Load()) > p.capacity {
		if !p.evictOne() {
			break
		}
	}
	return nil
}

// evictOne drops one LRU page from some shard (round-robin scan).
// Returns false when every shard is empty.
func (p *Pool) evictOne() bool {
	for range p.shards {
		sh := p.shards[int(p.rr.Add(1))%len(p.shards)]
		sh.mu.Lock()
		back := sh.lru.Back()
		if back == nil {
			sh.mu.Unlock()
			continue
		}
		id := back.Value.(uint64)
		sh.lru.Remove(back)
		delete(sh.frames, id)
		sh.evictions++
		p.resident.Add(-1)
		sh.mu.Unlock()
		return true
	}
	return false
}

// ReleaseNDP returns one NDP page's capacity to the free list ("after an
// NDP scan finishes processing an NDP page in the batch, the page is
// immediately released back to buffer pool free list").
func (p *Pool) ReleaseNDP() {
	for {
		n := p.ndpInUse.Load()
		if n <= 0 {
			return // over-release must not underflow
		}
		if p.ndpInUse.CompareAndSwap(n, n-1) {
			return
		}
	}
}

// NDPInUse reports currently reserved NDP pages.
func (p *Pool) NDPInUse() int { return int(p.ndpInUse.Load()) }

// Resident returns the number of cached regular pages.
func (p *Pool) Resident() int { return int(p.resident.Load()) }

// ResidentByIndex counts cached pages per index id — the measurement
// behind the paper's Q4 buffer-pool experiment (§VII-D: "the resulting
// buffer pool had 1,272,972 Lineitem pages" vs 24,186 with NDP).
func (p *Pool) ResidentByIndex() map[uint64]int {
	out := make(map[uint64]int)
	for _, sh := range p.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			out[f.pg.IndexID()]++
		}
		sh.mu.Unlock()
	}
	return out
}

// Stats returns pool-wide hit/miss/eviction counters.
func (p *Pool) Stats() (hits, misses, evictions uint64) {
	for _, sh := range p.shards {
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		evictions += sh.evictions
		sh.mu.Unlock()
	}
	return hits, misses, evictions
}

// ShardStats is one shard's observable state.
type ShardStats struct {
	Resident  int
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// SingleflightShared counts misses that joined another caller's
	// in-flight fetch instead of hitting the Page Store again;
	// StaleRefetches counts misses that bypassed the join because the
	// in-flight fetch predated their read-your-writes bound.
	SingleflightShared uint64
	StaleRefetches     uint64
}

// HitRate is the shard's hit fraction (0 with no traffic).
func (s ShardStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// ShardStatsSnapshot returns per-shard counters, for the stats endpoint
// and the sharding benchmarks.
func (p *Pool) ShardStatsSnapshot() []ShardStats {
	out := make([]ShardStats, len(p.shards))
	for i, sh := range p.shards {
		sh.mu.Lock()
		out[i] = ShardStats{
			Resident:           len(sh.frames),
			Hits:               sh.hits,
			Misses:             sh.misses,
			Evictions:          sh.evictions,
			SingleflightShared: sh.sfShared,
			StaleRefetches:     sh.staleRefetches,
		}
		sh.mu.Unlock()
	}
	return out
}

// Clear drops all cached regular pages (used between experiment runs
// to start cold, and by a replica resync). The epoch bump keeps any
// in-flight fetch from re-caching its pre-Clear image.
func (p *Pool) Clear() {
	p.epoch.Add(1)
	for _, sh := range p.shards {
		sh.mu.Lock()
		p.resident.Add(int64(-len(sh.frames)))
		sh.frames = make(map[uint64]*frame)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}
