// Package buffer implements the compute node's buffer pool and its NDP
// interaction rules (§IV-C3): regular pages live in the hash map and LRU
// list and are shared by all queries; NDP pages are allocated from the
// pool's free capacity but are "not inserted into such buffer pool
// management data structures as hash map, LRU list, flush list" — they
// are private to the scan cursor that requested them, and their count is
// capped (the innodb_ndp_max_pages_look_ahead parameter) so regular scans
// are not deprived of memory.
package buffer

import (
	"container/list"
	"fmt"
	"sync"

	"taurus/internal/page"
)

// DefaultNDPMaxPagesLookAhead mirrors the paper's new MySQL parameter
// bounding an NDP scan's memory footprint ("typically around a thousand
// pages" per batch).
const DefaultNDPMaxPagesLookAhead = 1024

// Pool is the buffer pool. All pages it caches are clean: mutations are
// logged through the SAL before being applied to cached copies, so
// eviction never loses data.
type Pool struct {
	mu sync.Mutex

	capacity int
	ndpCap   int
	ndpInUse int

	frames map[uint64]*frame
	lru    *list.List // front = most recent

	hits      uint64
	misses    uint64
	evictions uint64
}

type frame struct {
	pg  *page.Page
	elt *list.Element
}

// New creates a pool holding up to capacity regular pages and up to
// ndpCap concurrently-live NDP pages.
func New(capacity, ndpCap int) *Pool {
	if capacity < 8 {
		capacity = 8
	}
	if ndpCap <= 0 {
		ndpCap = DefaultNDPMaxPagesLookAhead
	}
	return &Pool{
		capacity: capacity,
		ndpCap:   ndpCap,
		frames:   make(map[uint64]*frame),
		lru:      list.New(),
	}
}

// Get returns the cached page, or fetches, caches, and returns it.
func (p *Pool) Get(pageID uint64, fetch func(pageID uint64) (*page.Page, error)) (*page.Page, error) {
	p.mu.Lock()
	if f, ok := p.frames[pageID]; ok {
		p.lru.MoveToFront(f.elt)
		p.hits++
		pg := f.pg
		p.mu.Unlock()
		return pg, nil
	}
	p.misses++
	p.mu.Unlock()
	// Fetch outside the lock; a racing fetch of the same page wastes a
	// read but converges (Insert keeps the first copy).
	pg, err := fetch(pageID)
	if err != nil {
		return nil, err
	}
	p.Insert(pg)
	return p.lookupOrThis(pageID, pg), nil
}

func (p *Pool) lookupOrThis(pageID uint64, fallback *page.Page) *page.Page {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[pageID]; ok {
		return f.pg
	}
	return fallback
}

// Lookup returns the cached page without fetching. This is the check a
// batch read performs before adding a leaf to the I/O request: "Before a
// leaf page ID is added to a batch read request, a check is made whether
// the page already exists in the buffer pool" (§IV-C4).
func (p *Pool) Lookup(pageID uint64) (*page.Page, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pageID]
	if !ok {
		return nil, false
	}
	p.lru.MoveToFront(f.elt)
	p.hits++
	return f.pg, true
}

// Insert caches a page (idempotent), evicting LRU pages as needed.
func (p *Pool) Insert(pg *page.Page) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := pg.ID()
	if _, ok := p.frames[id]; ok {
		return
	}
	p.evictForSpaceLocked()
	f := &frame{pg: pg}
	f.elt = p.lru.PushFront(id)
	p.frames[id] = f
}

func (p *Pool) evictForSpaceLocked() {
	for len(p.frames)+p.ndpInUse >= p.capacity {
		back := p.lru.Back()
		if back == nil {
			return // nothing evictable; NDP cap guards this case
		}
		id := back.Value.(uint64)
		p.lru.Remove(back)
		delete(p.frames, id)
		p.evictions++
	}
}

// Evict removes a page from the cache (no-op if absent).
func (p *Pool) Evict(pageID uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[pageID]; ok {
		p.lru.Remove(f.elt)
		delete(p.frames, pageID)
		p.evictions++
	}
}

// AllocNDP reserves capacity for one NDP page. It fails when the NDP cap
// is reached — the scan must release pages before reading more, which is
// exactly the paper's bounded look-ahead. Regular pages are evicted if
// the pool is full, never the other way around.
func (p *Pool) AllocNDP() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ndpInUse >= p.ndpCap {
		return fmt.Errorf("buffer: NDP page cap %d reached", p.ndpCap)
	}
	p.evictForSpaceLocked()
	p.ndpInUse++
	return nil
}

// ReleaseNDP returns one NDP page's capacity to the free list ("after an
// NDP scan finishes processing an NDP page in the batch, the page is
// immediately released back to buffer pool free list").
func (p *Pool) ReleaseNDP() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ndpInUse > 0 {
		p.ndpInUse--
	}
}

// NDPInUse reports currently reserved NDP pages.
func (p *Pool) NDPInUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ndpInUse
}

// Resident returns the number of cached regular pages.
func (p *Pool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// ResidentByIndex counts cached pages per index id — the measurement
// behind the paper's Q4 buffer-pool experiment (§VII-D: "the resulting
// buffer pool had 1,272,972 Lineitem pages" vs 24,186 with NDP).
func (p *Pool) ResidentByIndex() map[uint64]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[uint64]int)
	for _, f := range p.frames {
		out[f.pg.IndexID()]++
	}
	return out
}

// Stats returns hit/miss/eviction counters.
func (p *Pool) Stats() (hits, misses, evictions uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.evictions
}

// Clear drops all cached regular pages (used between experiment runs to
// start cold).
func (p *Pool) Clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames = make(map[uint64]*frame)
	p.lru.Init()
}
