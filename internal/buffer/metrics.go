package buffer

import "taurus/internal/obs"

// RegisterMetrics surfaces the pool's existing per-shard counters as
// scrape-time metric families. The hot path is untouched: values are
// aggregated only when the registry is scraped. The role label
// distinguishes pools when one process hosts several (master +
// replicas).
func (p *Pool) RegisterMetrics(reg *obs.Registry, role string) {
	if reg == nil {
		return
	}
	labels := []obs.Label{obs.L("role", role)}
	agg := func(pick func(ShardStats) float64) func() float64 {
		return func() float64 {
			var total float64
			for _, sh := range p.ShardStatsSnapshot() {
				total += pick(sh)
			}
			return total
		}
	}
	reg.CounterFunc("taurus_buffer_hits_total", "Buffer pool hits.",
		agg(func(s ShardStats) float64 { return float64(s.Hits) }), labels...)
	reg.CounterFunc("taurus_buffer_misses_total", "Buffer pool misses (Page Store fetches).",
		agg(func(s ShardStats) float64 { return float64(s.Misses) }), labels...)
	reg.CounterFunc("taurus_buffer_evictions_total", "Buffer pool evictions.",
		agg(func(s ShardStats) float64 { return float64(s.Evictions) }), labels...)
	reg.CounterFunc("taurus_buffer_singleflight_shared_total", "Misses served by joining another caller's in-flight fetch.",
		agg(func(s ShardStats) float64 { return float64(s.SingleflightShared) }), labels...)
	reg.CounterFunc("taurus_buffer_stale_refetches_total", "Misses that could not join an in-flight fetch bound to an older LSN.",
		agg(func(s ShardStats) float64 { return float64(s.StaleRefetches) }), labels...)
	reg.GaugeFunc("taurus_buffer_resident_pages", "Pages currently cached.",
		func() float64 { return float64(p.Resident()) }, labels...)
}
