package bench

import (
	"runtime"
	"time"

	"taurus/internal/obs"
)

// RunMeta stamps every persisted BENCH_*.json with enough environment
// context to compare runs across machines and commits.
type RunMeta struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// NewRunMeta captures the current process environment.
func NewRunMeta() RunMeta {
	return RunMeta{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// benchLatencyBuckets is the latency recorders' bucket layout: 1 µs to
// ~20 s at 1.2× per bucket — fine enough that interpolated p50/p99 land
// within a few percent of exact sorted-sample quantiles, which is below
// run-to-run noise.
var benchLatencyBuckets = obs.ExpBuckets(1e-6, 1.2, 93)

// newLatencyHist builds a standalone (unregistered) histogram workers
// observe concurrently; quantiles come from its snapshot.
func newLatencyHist() *obs.Histogram { return obs.NewHistogram(benchLatencyBuckets) }

// lagBuckets covers replica lag in records: 1 to ~1.6M at 1.5×.
var lagBuckets = obs.ExpBuckets(1, 1.5, 36)
