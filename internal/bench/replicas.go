package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"taurus"
	"taurus/internal/obs"
)

// ReplicaRow is one read-replica scale level: n replicas answering
// point SELECTs while one writer keeps committing on the master.
type ReplicaRow struct {
	Replicas int `json:"replicas"`
	// Readers is reader goroutines per replica.
	Readers int     `json:"readers_per_replica"`
	Seconds float64 `json:"seconds"`
	Reads   int64   `json:"reads"`
	ReadQPS float64 `json:"read_qps"`
	// WriteQPS is the master's concurrent commit rate during the level.
	WriteQPS float64 `json:"write_qps"`
	// P50/P99/MaxLagRecords summarize sampled replica lag (master
	// durable LSN minus replica visible LSN; LSNs are dense, so this
	// counts log records).
	P50LagRecords float64 `json:"p50_lag_records"`
	P99LagRecords float64 `json:"p99_lag_records"`
	MaxLagRecords uint64  `json:"max_lag_records"`
	// Notifies/Refreshes total the replicas' tailing activity;
	// StreamBatches counts pushed log frames the replicas consumed. In
	// push mode Refreshes counts only on-demand cycles (retention-miss
	// retries and detached fallbacks), so it stays near zero.
	Notifies      uint64 `json:"notifies"`
	Refreshes     uint64 `json:"refreshes"`
	StreamBatches uint64 `json:"stream_batches"`
	// LogReadReqs/SliceLSNReqs attribute the replicas' pull-tailing RPC
	// load on the storage cluster during the level (from the transport's
	// per-MsgType metrics): MsgLogRead fetches log records from the Log
	// Stores, MsgSliceLSN polls slice durable watermarks on the Page
	// Stores. The *PerSec forms normalize by the level's duration. With
	// push streams both should sit at ~0 in steady state.
	LogReadReqs    uint64  `json:"log_read_reqs"`
	LogReadPerSec  float64 `json:"log_read_per_sec"`
	SliceLSNReqs   uint64  `json:"slice_lsn_reqs"`
	SliceLSNPerSec float64 `json:"slice_lsn_per_sec"`
	// RPCRates breaks the level's whole RPC load down by message type
	// (requests/sec on the master's transport, zero-delta types
	// omitted) — push mode shows MsgLogBatch/MsgFrontier/MsgVersionPin
	// traffic where pull mode showed MsgLogRead/MsgSliceLSN polling.
	RPCRates map[string]float64 `json:"rpc_rates_per_sec,omitempty"`
}

// ReplicasReport is the persisted BENCH_replicas.json payload.
type ReplicasReport struct {
	Bench string       `json:"bench"`
	Meta  RunMeta      `json:"meta"`
	Rows  []ReplicaRow `json:"rows"`
	// ReadScaling2x is ReadQPS at 2 replicas over 1 replica — the
	// acceptance headline: attaching replicas scales read throughput.
	ReadScaling2x float64 `json:"read_scaling_2x,omitempty"`
	// ReadScalingMax is ReadQPS at the largest level over 1 replica.
	ReadScalingMax float64 `json:"read_scaling_max,omitempty"`
}

// Replicas measures read-QPS scaling and replication lag: one embedded
// master with a continuous writer, n log-tailing read replicas serving
// point SELECTs from the shared Page Stores, for each n in counts.
func Replicas(duration time.Duration, counts []int, readersPer int) ([]ReplicaRow, error) {
	if duration <= 0 {
		duration = 1500 * time.Millisecond
	}
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8, 16}
	}
	if readersPer <= 0 {
		readersPer = 2
	}
	const preload = 2000
	var rows []ReplicaRow
	for _, n := range counts {
		master, err := taurus.Open(taurus.Config{PagesPerSlice: 256})
		if err != nil {
			return nil, err
		}
		if _, err := master.Exec(`CREATE TABLE kv (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
			master.Close()
			return nil, err
		}
		for base := 0; base < preload; base += 500 {
			q := "INSERT INTO kv VALUES "
			for i := 0; i < 500; i++ {
				if i > 0 {
					q += ","
				}
				q += fmt.Sprintf("(%d, %d)", base+i, (base+i)%97)
			}
			if _, err := master.Exec(q); err != nil {
				master.Close()
				return nil, err
			}
		}
		reps := make([]*taurus.DB, n)
		for i := range reps {
			reps[i], err = taurus.OpenReplica(taurus.Config{Master: master})
			if err != nil {
				// Replicas close before their master.
				for _, rep := range reps[:i] {
					rep.Close()
				}
				master.Close()
				return nil, err
			}
		}
		row, err := runReplicaLevel(master, reps, duration, readersPer)
		for _, rep := range reps {
			rep.Close()
		}
		master.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runReplicaLevel drives one scale level: a writer on the master,
// readersPer point-SELECT readers per replica, and a lag sampler.
func runReplicaLevel(master *taurus.DB, reps []*taurus.DB, duration time.Duration, readersPer int) (ReplicaRow, error) {
	row := ReplicaRow{Replicas: len(reps), Readers: readersPer}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writes, reads atomic.Int64
	errCh := make(chan error, 1+len(reps)*readersPer)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := master.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", 1_000_000+i, i%97)); err != nil {
				fail(err)
				return
			}
			writes.Add(1)
		}
	}()
	for _, rep := range reps {
		for r := 0; r < readersPer; r++ {
			wg.Add(1)
			go func(rep *taurus.DB, seed int) {
				defer wg.Done()
				for i := seed; ; i += 7 {
					select {
					case <-stop:
						return
					default:
					}
					q := fmt.Sprintf("SELECT v FROM kv WHERE id = %d", i%2000)
					if _, err := rep.Exec(q); err != nil {
						fail(err)
						return
					}
					reads.Add(1)
				}
			}(rep, r)
		}
	}
	// Lag sampler: max over replicas each tick, into a histogram so the
	// percentiles come from the same machinery the server exports.
	lagHist := obs.NewHistogram(lagBuckets)
	sampler := time.NewTicker(5 * time.Millisecond)
	rpc0 := master.RPCStats()
	start := time.Now()
	deadline := time.After(duration)
sampling:
	for {
		select {
		case <-deadline:
			break sampling
		case err := <-errCh:
			close(stop)
			wg.Wait()
			return row, err
		case <-sampler.C:
			var worst uint64
			for _, rep := range reps {
				if lag := rep.ReplicaStats().LagRecords; lag > worst {
					worst = lag
				}
			}
			lagHist.Observe(float64(worst))
		}
	}
	sampler.Stop()
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		return row, err
	default:
	}
	elapsed := time.Since(start).Seconds()
	row.Seconds = elapsed
	row.Reads = reads.Load()
	row.ReadQPS = float64(row.Reads) / elapsed
	row.WriteQPS = float64(writes.Load()) / elapsed
	if snap := lagHist.Snapshot(); snap.Count > 0 {
		row.P50LagRecords = snap.P50
		row.P99LagRecords = snap.P99
		row.MaxLagRecords = uint64(snap.Max)
	}
	rpc := master.RPCStats()
	row.LogReadReqs = rpc["MsgLogRead"].Requests - rpc0["MsgLogRead"].Requests
	row.SliceLSNReqs = rpc["MsgSliceLSN"].Requests - rpc0["MsgSliceLSN"].Requests
	row.LogReadPerSec = float64(row.LogReadReqs) / elapsed
	row.SliceLSNPerSec = float64(row.SliceLSNReqs) / elapsed
	row.RPCRates = map[string]float64{}
	for msg, st := range rpc {
		if delta := st.Requests - rpc0[msg].Requests; delta > 0 {
			row.RPCRates[msg] = float64(delta) / elapsed
		}
	}
	for _, rep := range reps {
		st := rep.ReplicaStats()
		row.Notifies += st.Notifies
		row.Refreshes += st.Refreshes
		row.StreamBatches += st.StreamBatches
	}
	return row, nil
}

// BuildReplicasReport derives the scaling headlines from the rows.
func BuildReplicasReport(rows []ReplicaRow) ReplicasReport {
	rep := ReplicasReport{Bench: "replicas", Meta: NewRunMeta(), Rows: rows}
	var one, two, maxQPS float64
	maxReplicas := 0
	for _, r := range rows {
		switch r.Replicas {
		case 1:
			one = r.ReadQPS
		case 2:
			two = r.ReadQPS
		}
		if r.Replicas > maxReplicas {
			maxReplicas, maxQPS = r.Replicas, r.ReadQPS
		}
	}
	if one > 0 {
		if two > 0 {
			rep.ReadScaling2x = two / one
		}
		rep.ReadScalingMax = maxQPS / one
	}
	return rep
}

// WriteReplicasJSON persists the report.
func WriteReplicasJSON(path string, rep ReplicasReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// PrintReplicas renders the replica-scaling table.
func PrintReplicas(w io.Writer, rows []ReplicaRow) {
	fmt.Fprintln(w, "Read-replica scaling: point SELECTs on n replicas beside one continuous writer:")
	fmt.Fprintf(w, "  %-9s %8s %10s %10s %12s %12s %10s %9s %11s %11s\n",
		"replicas", "readers", "reads/s", "writes/s", "p50 lag", "p99 lag", "max lag", "push/s", "logread/s", "slicelsn/s")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9d %8d %10.0f %10.0f %9.0f rec %9.0f rec %6d rec %9.0f %11.0f %11.0f\n",
			r.Replicas, r.Replicas*r.Readers, r.ReadQPS, r.WriteQPS,
			r.P50LagRecords, r.P99LagRecords, r.MaxLagRecords,
			float64(r.StreamBatches)/r.Seconds, r.LogReadPerSec, r.SliceLSNPerSec)
	}
	rep := BuildReplicasReport(rows)
	if rep.ReadScaling2x > 0 {
		fmt.Fprintf(w, "  read scaling: %.2fx at 2 replicas, %.2fx at max\n",
			rep.ReadScaling2x, rep.ReadScalingMax)
	}
}
