package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync/atomic"
	"time"

	"taurus"
	"taurus/internal/exec"
	"taurus/internal/tpch"
)

// AnalyticsRow is one (query, parallelism, routing) cell of the
// parallel-scan sweep: the best and mean latency over the runs, the
// speedup against the serial (parallelism 1) cell of the same query and
// routing mode, and the router counters the cell generated.
type AnalyticsRow struct {
	Query       string `json:"query"`
	Parallelism int    `json:"parallelism"`
	// Routing is true when sub-batches go to the least-loaded Page
	// Store replica, false when they round-robin.
	Routing    bool    `json:"routing"`
	Runs       int     `json:"runs"`
	BestMillis float64 `json:"best_ms"`
	MeanMillis float64 `json:"mean_ms"`
	// Speedup is serial best over this cell's best (1.0 at
	// parallelism 1 by construction).
	Speedup float64 `json:"speedup_vs_serial"`
	Rows    int     `json:"rows"`
	// ResultHash fingerprints the result rows; every cell of one query
	// must agree or the parallel merge is wrong.
	ResultHash  string `json:"result_hash"`
	ScanRouted  uint64 `json:"scan_routed"`
	ScanRetried uint64 `json:"scan_retried"`
	ScanHedged  uint64 `json:"scan_hedged"`
}

// HTAPRow measures the paper's HTAP claim: analytics on a read replica
// leave the master's write path alone. One continuous writer commits on
// the master while TPC-H scans loop on a log-tailing replica.
type HTAPRow struct {
	Seconds float64 `json:"seconds"`
	// BaselineWriteQPS is the writer alone; ScanWriteQPS is the writer
	// while the replica scans.
	BaselineWriteQPS float64 `json:"baseline_write_qps"`
	ScanWriteQPS     float64 `json:"write_qps_under_scans"`
	// ReplicaScans counts Q6 executions the replica completed during
	// the measured window.
	ReplicaScans int `json:"replica_scans"`
	// ReplicaRows is the scalar Q6 row count (sanity: scans returned).
	ReplicaRows int `json:"replica_rows"`
}

// AnalyticsReport is the persisted BENCH_analytics.json payload.
type AnalyticsReport struct {
	Bench string         `json:"bench"`
	Meta  RunMeta        `json:"meta"`
	Rows  []AnalyticsRow `json:"rows"`
	HTAP  *HTAPRow       `json:"htap,omitempty"`
	// ResultsIdentical is true when every cell of each query produced
	// the same result hash — parallel merge equals serial execution.
	ResultsIdentical bool `json:"results_identical"`
	// BestSpeedup headlines the sweep: max speedup over all parallel
	// cells with routing on.
	BestSpeedup      float64 `json:"best_speedup"`
	BestSpeedupQuery string  `json:"best_speedup_query,omitempty"`
}

// analyticsQueries returns the sweep workload: scalar Q6 (one
// cross-partition scalar merge) and grouped Q1G (GROUP BY on the
// primary-key prefix, so groups split across slice boundaries and the
// ordered cross-partition merge re-joins them).
func analyticsQueries() ([]tpch.Query, error) {
	q6, err := tpch.QueryByName("Q6")
	if err != nil {
		return nil, err
	}
	return []tpch.Query{q6, {Name: "Q1G", Build: tpch.Q1G}}, nil
}

// hashRows fingerprints a result set, order-sensitively: scalar results
// have one row and grouped results arrive in group-key order, so equal
// executions hash equal.
func hashRows(rows [][]string) string {
	h := fnv.New64a()
	for _, r := range rows {
		for _, d := range r {
			h.Write([]byte(d))
			h.Write([]byte{0})
		}
		h.Write([]byte{0xFF})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Analytics runs the parallel-scan sweep on a fresh fixture: each query
// at every parallelism level, with least-loaded routing on and off,
// runs times each (cold pool), then the HTAP writer-vs-replica-scans
// measurement. levels defaults to 1,2,4,8; runs to 3.
func Analytics(sf float64, runs int, levels []int, htapDur time.Duration) (*AnalyticsReport, error) {
	if runs <= 0 {
		runs = 3
	}
	if len(levels) == 0 {
		levels = []int{1, 2, 4, 8}
	}
	if htapDur <= 0 {
		htapDur = 800 * time.Millisecond
	}
	f, err := NewFixture(sf)
	if err != nil {
		return nil, err
	}
	queries, err := analyticsQueries()
	if err != nil {
		return nil, err
	}
	rep := &AnalyticsReport{Bench: "analytics", Meta: NewRunMeta(), ResultsIdentical: true}
	for _, q := range queries {
		// One untimed warmup so the serial baseline doesn't absorb
		// first-touch costs (descriptor compile, code paths).
		f.DB.Eng.Pool().Clear()
		f.DB.Eng.SetScanParallelism(1)
		if _, err := tpch.Run(tpch.NewEnv(f.DB, true), exec.NewCtx(f.DB.Eng), q); err != nil {
			return nil, fmt.Errorf("%s warmup: %w", q.Name, err)
		}
		var queryHash string
		serialBest := map[bool]float64{}
		for _, routing := range []bool{true, false} {
			f.DB.Eng.SAL().SetLeastLoadedReads(routing)
			for _, level := range levels {
				f.DB.Eng.SetScanParallelism(level)
				row := AnalyticsRow{Query: q.Name, Parallelism: level, Routing: routing, Runs: runs}
				r0 := f.DB.Eng.SAL().RouterStats()
				var total time.Duration
				best := time.Duration(-1)
				for i := 0; i < runs; i++ {
					f.DB.Eng.Pool().Clear()
					env := tpch.NewEnv(f.DB, true)
					ctx := exec.NewCtx(f.DB.Eng)
					start := time.Now()
					rows, err := tpch.Run(env, ctx, q)
					if err != nil {
						return nil, fmt.Errorf("%s (par=%d routing=%v): %w", q.Name, level, routing, err)
					}
					wall := time.Since(start)
					total += wall
					if best < 0 || wall < best {
						best = wall
					}
					row.Rows = len(rows)
					printable := make([][]string, len(rows))
					for j, r := range rows {
						cells := make([]string, len(r))
						for k, d := range r {
							cells[k] = fmt.Sprintf("%v", d)
						}
						printable[j] = cells
					}
					row.ResultHash = hashRows(printable)
				}
				r1 := f.DB.Eng.SAL().RouterStats()
				row.ScanRouted = r1.ScanRouted - r0.ScanRouted
				row.ScanRetried = r1.ScanRetried - r0.ScanRetried
				row.ScanHedged = r1.ScanHedged - r0.ScanHedged
				row.BestMillis = float64(best.Microseconds()) / 1000
				row.MeanMillis = float64(total.Microseconds()) / 1000 / float64(runs)
				if level == 1 {
					serialBest[routing] = row.BestMillis
				}
				if sb := serialBest[routing]; sb > 0 && row.BestMillis > 0 {
					row.Speedup = sb / row.BestMillis
				}
				if queryHash == "" {
					queryHash = row.ResultHash
				} else if row.ResultHash != queryHash {
					rep.ResultsIdentical = false
				}
				if routing && level > 1 && row.Speedup > rep.BestSpeedup {
					rep.BestSpeedup = row.Speedup
					rep.BestSpeedupQuery = q.Name
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	f.DB.Eng.SetScanParallelism(0)
	f.DB.Eng.SAL().SetLeastLoadedReads(true)
	htap, err := AnalyticsHTAP(sf, htapDur)
	if err != nil {
		return nil, err
	}
	rep.HTAP = htap
	return rep, nil
}

// AnalyticsHTAP measures master write QPS alone and then under
// continuous Q6 scans on a log-tailing read replica attached to the
// same storage cluster.
func AnalyticsHTAP(sf float64, dur time.Duration) (*HTAPRow, error) {
	master, err := taurus.Open(taurus.Config{PagesPerSlice: 64})
	if err != nil {
		return nil, err
	}
	defer master.Close()
	if _, err := tpch.Load(master.Engine(), sf); err != nil {
		return nil, err
	}
	if _, err := master.Exec(`CREATE TABLE bench_kv (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		return nil, err
	}
	rep, err := taurus.OpenReplica(taurus.Config{Master: master})
	if err != nil {
		return nil, err
	}
	defer rep.Close()
	// Wait for the replica to attach the TPC-H tables and drain its lag
	// so Attach sees every loaded row.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := rep.ReplicaStats()
		if st.TablesAttached >= 8 && st.LagRecords == 0 {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("htap: replica never caught up (attached=%d lag=%d)",
				st.TablesAttached, st.LagRecords)
		}
		time.Sleep(5 * time.Millisecond)
	}
	repDB, err := tpch.Attach(rep.Engine(), sf)
	if err != nil {
		return nil, err
	}
	q6, err := tpch.QueryByName("Q6")
	if err != nil {
		return nil, err
	}
	row := &HTAPRow{Seconds: dur.Seconds()}
	writeFor := func(d time.Duration) (int, error) {
		n := 0
		stop := time.Now().Add(d)
		for time.Now().Before(stop) {
			if _, err := master.Exec(fmt.Sprintf("INSERT INTO bench_kv VALUES (%d, %d)", writeSeq, writeSeq%97)); err != nil {
				return n, err
			}
			writeSeq++
			n++
		}
		return n, nil
	}
	base, err := writeFor(dur)
	if err != nil {
		return nil, err
	}
	row.BaselineWriteQPS = float64(base) / dur.Seconds()
	// Replica scan loop beside the writer.
	var stopScans atomic.Bool
	scansDone := make(chan int, 1)
	scanErr := make(chan error, 1)
	go func() {
		n := 0
		for !stopScans.Load() {
			env := tpch.NewEnv(repDB, true)
			ctx := exec.NewCtx(rep.Engine())
			rows, err := tpch.Run(env, ctx, q6)
			if err != nil {
				scanErr <- err
				scansDone <- n
				return
			}
			row.ReplicaRows = len(rows)
			n++
		}
		scansDone <- n
	}()
	under, err := writeFor(dur)
	stopScans.Store(true)
	row.ReplicaScans = <-scansDone
	if err != nil {
		return nil, err
	}
	select {
	case err := <-scanErr:
		return nil, fmt.Errorf("htap: replica scan: %w", err)
	default:
	}
	row.ScanWriteQPS = float64(under) / dur.Seconds()
	return row, nil
}

// writeSeq keeps HTAP writer keys unique across the baseline and
// under-scan windows (and across calls in one process).
var writeSeq int64

// WriteAnalyticsJSON persists the report.
func WriteAnalyticsJSON(path string, rep *AnalyticsReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// PrintAnalytics renders the sweep and the HTAP measurement.
func PrintAnalytics(w io.Writer, rep *AnalyticsReport) {
	fmt.Fprintln(w, "Parallel NDP analytics: per-slice fan-out across Page Store replicas:")
	fmt.Fprintf(w, "  %-6s %5s %-8s %10s %10s %8s %8s %8s %7s\n",
		"query", "par", "routing", "best ms", "mean ms", "speedup", "routed", "retried", "hedged")
	for _, r := range rep.Rows {
		mode := "rrobin"
		if r.Routing {
			mode = "least"
		}
		fmt.Fprintf(w, "  %-6s %5d %-8s %10.2f %10.2f %7.2fx %8d %8d %7d\n",
			r.Query, r.Parallelism, mode, r.BestMillis, r.MeanMillis, r.Speedup,
			r.ScanRouted, r.ScanRetried, r.ScanHedged)
	}
	fmt.Fprintf(w, "  results identical across all cells: %v\n", rep.ResultsIdentical)
	if rep.BestSpeedup > 0 {
		fmt.Fprintf(w, "  best parallel speedup: %.2fx (%s)\n", rep.BestSpeedup, rep.BestSpeedupQuery)
	}
	if rep.HTAP != nil {
		h := rep.HTAP
		fmt.Fprintf(w, "  HTAP: master writes %.0f/s alone, %.0f/s under %d replica Q6 scans (%.1fs windows)\n",
			h.BaselineWriteQPS, h.ScanWriteQPS, h.ReplicaScans, h.Seconds)
	}
}
