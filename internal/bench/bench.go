// Package bench is the experiment harness: it replays every figure of
// the paper's evaluation section (§VII) against the Go reproduction and
// prints rows in the same terms the paper reports (percent reductions in
// network traffic, SQL-node CPU time, and run time).
package bench

import (
	"fmt"
	"io"
	"time"

	"taurus/internal/engine"
	"taurus/internal/exec"
	"taurus/internal/pagestore"
	"taurus/internal/sim"
	"taurus/internal/testutil"
	"taurus/internal/tpch"
)

// Fixture is a loaded TPC-H cluster ready for experiments.
type Fixture struct {
	Cluster *testutil.Cluster
	DB      *tpch.DB
	Model   sim.Model
}

// NewFixture builds the paper's small test cluster (4 Page Stores, 3-way
// replication) and loads TPC-H at the scale factor. The buffer pool is
// sized at ~20% of the database, matching the paper's 20 GB pool for
// 100 GB of data.
func NewFixture(sf float64) (*Fixture, error) {
	// Size the pool at roughly a third of the lineitem leaf level, so
	// (as with the paper's 20 GB pool over 100 GB of data) big scans
	// cannot be served from cache.
	liRows := int(6000000 * sf)
	pool := liRows / 96 / 3
	if pool < 96 {
		pool = 96
	}
	c, err := testutil.NewCluster(testutil.Options{
		PageStores: 4, ReplicationFactor: 3, PagesPerSlice: 64,
		PoolPages: pool, LookAhead: 64,
	})
	if err != nil {
		return nil, err
	}
	db, err := tpch.Load(c.Engine, sf)
	if err != nil {
		return nil, err
	}
	return &Fixture{Cluster: c, DB: db, Model: sim.DefaultModel()}, nil
}

// Measurement captures one query execution.
type Measurement struct {
	Query    string
	NDP      bool
	Rows     int
	Wall     time.Duration
	NetBytes uint64
	NetReqs  uint64
	// SQLCPUUnits is the weighted SQL-node work (see cpuUnits).
	SQLCPUUnits float64
	// SerialCPUUnits is the subset attributed to inherently serial
	// operators (sorts, final merges).
	SerialCPUUnits float64
	// StoreRecords is Page-Store-side NDP record processing.
	StoreRecords uint64
	// NDPPages/SkippedPages count Page Store outcomes.
	NDPPages     uint64
	SkippedPages uint64
	// Reports carries the per-access optimizer decisions.
	Reports []tpch.AccessReport
}

// cpuUnits converts measured counters into SQL-node CPU work units. The
// weights are order-of-magnitude costs of the operations in a
// tree-walking executor; they are constants of the reproduction, stated
// here and in EXPERIMENTS.md.
func cpuUnits(em engine.MetricsSnapshot, es exec.ExecStatsSnapshot) (total, serial float64) {
	scanWork := float64(em.RowsExaminedSQL)*1.0 +
		float64(em.PredEvalsSQL)*0.5 +
		float64(em.UndoResolutions)*2.0 +
		float64(em.AggMergesSQL)*0.5 +
		float64(em.RowsEmitted)*0.2
	execWork := float64(es.OperatorRows)*0.8 +
		float64(es.ExprEvals)*0.4 +
		float64(es.HashOps)*1.0
	sortWork := float64(es.SortRows) * 1.2
	return scanWork + execWork + sortWork, sortWork
}

// RunQuery executes one query and measures it. The buffer pool is left
// as-is (experiments that need a cold pool clear it first), because the
// paper runs the 22 queries "in sequence without restarting the server".
func (f *Fixture) RunQuery(q tpch.Query, ndp bool) (Measurement, error) {
	env := tpch.NewEnv(f.DB, ndp)
	ctx := exec.NewCtx(f.DB.Eng)
	em0 := f.DB.Eng.Metrics.Snapshot()
	net0 := f.Cluster.Transport.Stats.Snapshot()
	var ps0 []StoreCounters
	for _, ps := range f.Cluster.PageStores {
		ps0 = append(ps0, storeCounters(ps.Snapshot()))
	}
	start := time.Now()
	rows, err := tpch.Run(env, ctx, q)
	if err != nil {
		return Measurement{}, fmt.Errorf("%s (ndp=%v): %w", q.Name, ndp, err)
	}
	wall := time.Since(start)
	em := f.DB.Eng.Metrics.Snapshot().Sub(em0)
	es := ctx.Stats.Snapshot()
	net := f.Cluster.Transport.Stats.Snapshot().Sub(net0)
	var storeRecs, ndpPages, skipped uint64
	for i, ps := range f.Cluster.PageStores {
		cur := storeCounters(ps.Snapshot())
		storeRecs += cur.RecordsIn - ps0[i].RecordsIn
		ndpPages += cur.Processed - ps0[i].Processed
		skipped += cur.Skipped - ps0[i].Skipped
	}
	total, serial := cpuUnits(em, es)
	return Measurement{
		Query: q.Name, NDP: ndp, Rows: len(rows), Wall: wall,
		NetBytes: net.BytesReceived, NetReqs: net.Requests,
		SQLCPUUnits: total, SerialCPUUnits: serial,
		StoreRecords: storeRecs, NDPPages: ndpPages, SkippedPages: skipped,
		Reports: env.Reports,
	}, nil
}

// StoreCounters is the per-store subset we delta.
type StoreCounters struct {
	RecordsIn, Processed, Skipped uint64
}

func storeCounters(v pagestore.StatsSnapshot) StoreCounters {
	return StoreCounters{RecordsIn: v.NDPRecordsIn, Processed: v.NDPPagesProcessed, Skipped: v.NDPPagesSkipped}
}

// Work converts a measurement into the sim model's input.
func (m Measurement) Work() sim.Work {
	return sim.Work{
		NetBytes:         float64(m.NetBytes),
		NetRequests:      float64(m.NetReqs),
		SerialCPUUnits:   m.SerialCPUUnits,
		ParallelCPUUnits: m.SQLCPUUnits - m.SerialCPUUnits,
		StoreRecords:     float64(m.StoreRecords),
	}
}

// pct formats a percentage.
func pct(v float64) string { return fmt.Sprintf("%6.1f%%", v) }

// reduction of b vs a in percent.
func reduction(a, b uint64) float64 {
	if a == 0 {
		return 0
	}
	return (1 - float64(b)/float64(a)) * 100
}

func reductionF(a, b float64) float64 {
	if a <= 0 {
		return 0
	}
	return (1 - b/a) * 100
}

// fprintf writes to w ignoring errors (report printing).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
