package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"taurus/internal/cluster"
	"taurus/internal/logstore"
	"taurus/internal/obs"
	"taurus/internal/page"
	"taurus/internal/pagestore"
	"taurus/internal/sal"
	"taurus/internal/types"
	"taurus/internal/wal"
)

// WritePathCluster is a durable storage cluster (disk-backed, group-
// committing Log Stores; in-memory Page Stores) with a write path
// attached: either the pipelined group-commit SAL or a faithful
// emulation of the pre-pipeline serial flush, driving the same kinds of
// storage nodes.
type WritePathCluster struct {
	SAL    *sal.SAL
	Serial *SerialWritePath

	close_ []func() error
}

// NewWritePathCluster builds the cluster under dir and pre-creates
// pages 1..pages (one per worker) on the chosen write path, so slice
// placement and page formatting stay outside the measurement.
func NewWritePathCluster(dir string, pages int, serial bool) (*WritePathCluster, error) {
	return newWritePathCluster(dir, pages, serial, nil)
}

func newWritePathCluster(dir string, pages int, serial bool, tracer *obs.Tracer) (*WritePathCluster, error) {
	tr := cluster.NewInProc()
	tr.Tracer = tracer
	c := &WritePathCluster{}
	logNames := []string{"log1", "log2", "log3"}
	for _, n := range logNames {
		ls, err := logstore.Open(n, fmt.Sprintf("%s/%s", dir, n),
			logstore.WithFlushInterval(200*time.Microsecond))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.close_ = append(c.close_, ls.Close)
		tr.Register(n, ls)
	}
	psNames := []string{"ps1", "ps2", "ps3", "ps4"}
	for _, n := range psNames {
		tr.Register(n, pagestore.New(n))
	}
	if serial {
		c.Serial = &SerialWritePath{tr: tr, logNames: logNames, psNames: psNames}
		if err := c.Serial.setup(pages); err != nil {
			c.Close()
			return nil, err
		}
		return c, nil
	}
	// Metrics stay armed in the benchmark so the measured throughput
	// carries the instrumentation cost the server pays in production.
	s, err := sal.New(sal.Config{
		Tenant: 1, Transport: tr, LogStores: logNames, PageStores: psNames,
		ReplicationFactor: 3, PagesPerSlice: 16, Plugin: pagestore.PluginInnoDB,
		FlushThreshold: 64, Metrics: obs.NewRegistry(), Tracer: tracer,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.SAL = s
	c.close_ = append([]func() error{s.Close}, c.close_...)
	for p := 1; p <= pages; p++ {
		if _, err := s.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: uint64(p), IndexID: 1}); err != nil {
			c.Close()
			return nil, err
		}
	}
	if err := s.Flush(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Close releases the write path and the Log Stores' on-disk state.
func (c *WritePathCluster) Close() {
	for _, f := range c.close_ {
		f()
	}
}

// SerialWritePath emulates the pre-pipeline SAL write path for the
// before/after comparison: one global mutex held across the entire
// commit — Log Store triplicate appends (concurrent, as before), then
// Page Store replica applies issued serially — exactly the seed
// sal.Write + flushLocked structure with a flush per commit, which is
// what the statement path did.
type SerialWritePath struct {
	mu       sync.Mutex
	lsn      uint64
	tr       cluster.Transport
	logNames []string
	psNames  []string
	replicas map[uint32][]string
}

// setup formats the benchmark pages (provisioning their slices on the
// way, the way the seed's placementLocked did).
func (w *SerialWritePath) setup(pages int) error {
	for p := 1; p <= pages; p++ {
		if err := w.Commit(&wal.Record{Type: wal.TypeFormatPage, PageID: uint64(p), IndexID: 1}); err != nil {
			return err
		}
	}
	return nil
}

// replicaSet returns (creating on first use) a slice's replicas, with
// the SAL's round-robin placement rule.
func (w *SerialWritePath) replicaSet(sliceID uint32) ([]string, error) {
	if nodes, ok := w.replicas[sliceID]; ok {
		return nodes, nil
	}
	var nodes []string
	for i := 0; i < 3; i++ {
		node := w.psNames[(int(sliceID)+i)%len(w.psNames)]
		if _, err := w.tr.Call(node, &cluster.CreateSliceReq{Tenant: 1, SliceID: sliceID}); err != nil {
			return nil, err
		}
		nodes = append(nodes, node)
	}
	if w.replicas == nil {
		w.replicas = make(map[uint32][]string)
	}
	w.replicas[sliceID] = nodes
	return nodes, nil
}

// Commit logs one record and flushes it synchronously under the global
// lock: durable in triplicate, then applied replica by replica.
func (w *SerialWritePath) Commit(rec *wal.Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lsn++
	rec.LSN = w.lsn
	enc := rec.Encode(nil)
	errs := make([]error, len(w.logNames))
	var wg sync.WaitGroup
	for i, node := range w.logNames {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			if _, err := w.tr.Call(node, &cluster.LogAppendReq{Tenant: 1, Recs: enc}); err != nil {
				errs[i] = err
			}
		}(i, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	nodes, err := w.replicaSet(uint32(rec.PageID / 16))
	if err != nil {
		return err
	}
	for _, node := range nodes {
		if _, err := w.tr.Call(node, &cluster.WriteLogsReq{Tenant: 1, SliceID: uint32(rec.PageID / 16), Recs: enc}); err != nil {
			return err
		}
	}
	return nil
}

// WritePathRow is one line of the write-path experiment.
type WritePathRow struct {
	Mode      string  `json:"mode"`
	Workers   int     `json:"workers"`
	Commits   int     `json:"commits"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

// CommitRecord builds the i-th redo record for a worker's page: mostly
// row inserts, with a periodic page re-format so the page never fills
// no matter how many commits run (~300 of these small rows fit in a
// 16 KB page).
func CommitRecord(pageID uint64, i int64) *wal.Record {
	if i%300 == 0 {
		return &wal.Record{Type: wal.TypeFormatPage, PageID: pageID, IndexID: 1}
	}
	return InsertRecord(pageID, i)
}

// InsertRecord builds a small but realistic redo record for write-path
// benchmarks.
func InsertRecord(pageID uint64, id int64) *wal.Record {
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindInt},
	)
	key := types.EncodeKey(nil, types.Row{types.NewInt(id)})
	row := types.EncodeRow(nil, schema, types.Row{types.NewInt(id), types.NewInt(id % 97)})
	return &wal.Record{
		Type: wal.TypeInsertRec, PageID: pageID, Off: wal.OffAppend,
		TrxID: 9, Payload: page.EncodeLeafPayload(nil, key, row),
	}
}

// WritePath measures durable-commit throughput and latency of the
// serial (pre-pipeline) and pipelined write paths under concurrent
// committers. Every commit waits for durability in triplicate; the
// pipelined mode additionally overlaps Page Store application and
// shares group-commit windows between committers.
func WritePath(commits int, workerCounts []int) ([]WritePathRow, error) {
	if commits <= 0 {
		commits = 1500
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4, 8}
	}
	var rows []WritePathRow
	for _, mode := range []string{"serial-flush", "pipelined"} {
		for _, workers := range workerCounts {
			dir, err := os.MkdirTemp("", "taurus-writepath-*")
			if err != nil {
				return nil, err
			}
			c, err := NewWritePathCluster(dir, workers, mode == "serial-flush")
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			per := commits / workers
			lat := newLatencyHist()
			errs := make([]error, workers)
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						rec := CommitRecord(uint64(w+1), int64(i)+1)
						t0 := time.Now()
						var err error
						if c.Serial != nil {
							err = c.Serial.Commit(rec)
						} else {
							var lsn uint64
							if lsn, err = c.SAL.Write(rec); err == nil {
								err = c.SAL.WaitDurable(lsn)
							}
						}
						if err != nil {
							errs[w] = err
							return
						}
						lat.ObserveDuration(time.Since(t0))
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			c.Close()
			os.RemoveAll(dir)
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			snap := lat.Snapshot()
			rows = append(rows, WritePathRow{
				Mode: mode, Workers: workers, Commits: workers * per,
				OpsPerSec: float64(workers*per) / elapsed.Seconds(),
				P50Micros: snap.P50 * 1e6,
				P99Micros: snap.P99 * 1e6,
			})
		}
	}
	return rows, nil
}

// TraceOverheadResult records the pipelined write path's throughput
// with distributed tracing wired in at two sampling rates. Sample 0 is
// the production default (the tracer is present but every rate check
// says no); sample 1.0 traces every commit end to end, including the
// per-record span bookkeeping in the SAL pipeline.
type TraceOverheadResult struct {
	Workers          int     `json:"workers"`
	Commits          int     `json:"commits"`
	Sample0OpsPerSec float64 `json:"sample0_ops_per_sec"`
	Sample1OpsPerSec float64 `json:"sample1_ops_per_sec"`
	// OverheadPct is the throughput lost going from sampling 0 to 1.0,
	// as a percentage of the sampling-0 rate.
	OverheadPct float64 `json:"overhead_pct"`
}

// TraceOverhead measures the tracing tax on the pipelined write path:
// runs with the tracer at sampling rate 0 versus 1.0, identical
// otherwise. Both runs execute the same per-commit code (MaybeTrace,
// TrxID registration when sampled, traced durable wait) so the delta
// isolates the cost of actually recording spans. The two rates are
// interleaved over three repetitions and the best of each is kept —
// on small shared boxes a single run is dominated by scheduling noise,
// not by the few hundred nanoseconds a span record costs.
func TraceOverhead(commits, workers int) (TraceOverheadResult, error) {
	if commits <= 0 {
		commits = 1500
	}
	if workers <= 0 {
		workers = 8
	}
	res := TraceOverheadResult{Workers: workers, Commits: (commits / workers) * workers}
	for rep := 0; rep < 3; rep++ {
		s0, err := traceOverheadRun(commits, workers, 0)
		if err != nil {
			return res, err
		}
		s1, err := traceOverheadRun(commits, workers, 1)
		if err != nil {
			return res, err
		}
		if s0 > res.Sample0OpsPerSec {
			res.Sample0OpsPerSec = s0
		}
		if s1 > res.Sample1OpsPerSec {
			res.Sample1OpsPerSec = s1
		}
	}
	if res.Sample0OpsPerSec > 0 {
		res.OverheadPct = (1 - res.Sample1OpsPerSec/res.Sample0OpsPerSec) * 100
	}
	return res, nil
}

func traceOverheadRun(commits, workers int, rate float64) (float64, error) {
	dir, err := os.MkdirTemp("", "taurus-traceovh-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	tracer := obs.NewTracer("bench-frontend", rate, 0)
	c, err := newWritePathCluster(dir, workers, false, tracer)
	if err != nil {
		return 0, err
	}
	per := commits / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := CommitRecord(uint64(w+1), int64(i)+1)
				// Unique TrxID per commit so the SAL's trace registry
				// attributes apply spans to the right trace.
				trxID := uint64(w+1)<<32 | uint64(i+1)
				rec.TrxID = trxID
				root := tracer.MaybeTrace("bench.commit")
				tc := root.Context()
				if tc.Valid() {
					c.SAL.SetTxnTrace(trxID, tc)
				}
				lsn, err := c.SAL.Write(rec)
				if err == nil {
					err = c.SAL.WaitDurableTraced(lsn, tc)
				}
				if tc.Valid() {
					c.SAL.ClearTxnTrace(trxID)
				}
				root.End()
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	c.Close()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(workers*per) / elapsed.Seconds(), nil
}

// delayTransport injects latency into one node's log-apply path,
// emulating a slow Page Store replica.
type delayTransport struct {
	inner cluster.Transport
	node  string
	delay time.Duration
}

func (d *delayTransport) Call(node string, req any) (any, error) {
	if node == d.node {
		if _, ok := req.(*cluster.WriteLogsReq); ok {
			time.Sleep(d.delay)
		}
	}
	return d.inner.Call(node, req)
}

// skewedPagesPerSlice makes pages 1..15 slice 0 (hot) and page 17
// slice 1 (cold). With round-robin placement over four Page Stores,
// slice 0 lands on ps1..ps3 and slice 1 on ps2..ps4 — so the slow
// replica (ps4) serves only the cold slice.
const skewedPagesPerSlice = 16

const skewedColdPage = 17

// newSkewedCluster builds the skewed-slice fixture: disk-backed Log
// Stores, four Page Stores with ps4 artificially slow at applying, and
// a SAL with per-slice lanes enabled or disabled (the PR-3
// global-window baseline). Small windows and a small in-flight budget
// make the apply-stage backpressure bite quickly.
func newSkewedCluster(dir string, lanes bool, hotPages int, applyDelay time.Duration) (*WritePathCluster, error) {
	tr := cluster.NewInProc()
	slow := &delayTransport{inner: tr, node: "ps4", delay: applyDelay}
	c := &WritePathCluster{}
	logNames := []string{"log1", "log2", "log3"}
	for _, n := range logNames {
		ls, err := logstore.Open(n, fmt.Sprintf("%s/%s", dir, n),
			logstore.WithFlushInterval(200*time.Microsecond))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.close_ = append(c.close_, ls.Close)
		tr.Register(n, ls)
	}
	psNames := []string{"ps1", "ps2", "ps3", "ps4"}
	for _, n := range psNames {
		tr.Register(n, pagestore.New(n))
	}
	maxLanes := -1 // single shared lane: the global-window baseline
	if lanes {
		maxLanes = 1
	}
	s, err := sal.New(sal.Config{
		Tenant: 1, Transport: slow, LogStores: logNames, PageStores: psNames,
		ReplicationFactor: 3, PagesPerSlice: skewedPagesPerSlice,
		Plugin:         pagestore.PluginInnoDB,
		FlushThreshold: 16, MaxInFlightWindows: 4, MaxSliceLanes: maxLanes,
		ApplyBacklogWindows: 32, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.SAL = s
	c.close_ = append([]func() error{s.Close}, c.close_...)
	for p := 1; p <= hotPages; p++ {
		if _, err := s.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: uint64(p), IndexID: 1}); err != nil {
			c.Close()
			return nil, err
		}
	}
	if _, err := s.Write(&wal.Record{Type: wal.TypeFormatPage, PageID: skewedColdPage, IndexID: 1}); err != nil {
		c.Close()
		return nil, err
	}
	if err := s.Flush(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// SkewedWritePath measures commit latency of writers on a hot slice
// while an unrelated writer keeps a cold slice busy whose replica set
// includes an artificially slow Page Store. With one global window
// stream (the PR-3 baseline), the cold slice's slow applies exhaust the
// shared in-flight budget and every hot commit queues behind them; with
// per-slice lanes, the hot slice is promoted to its own lane and its
// commit latency stays at fsync scale. Returns one row per mode for the
// hot writers only.
func SkewedWritePath(commits, hotWriters int, applyDelay time.Duration) ([]WritePathRow, uint64, error) {
	if commits <= 0 {
		commits = 800
	}
	if hotWriters <= 0 {
		hotWriters = 4
	}
	if hotWriters > 8 {
		hotWriters = 8 // keep every hot page inside slice 0
	}
	if applyDelay <= 0 {
		applyDelay = 20 * time.Millisecond
	}
	var rows []WritePathRow
	var promotions uint64
	for _, mode := range []struct {
		name  string
		lanes bool
	}{{"skew-global-window", false}, {"skew-slice-lanes", true}} {
		dir, err := os.MkdirTemp("", "taurus-skewpath-*")
		if err != nil {
			return nil, 0, err
		}
		c, err := newSkewedCluster(dir, mode.lanes, hotWriters, applyDelay)
		if err != nil {
			os.RemoveAll(dir)
			return nil, 0, err
		}
		per := commits / hotWriters
		lat := newLatencyHist()
		errs := make([]error, hotWriters+1)
		stop := make(chan struct{})
		var coldWG sync.WaitGroup
		coldWG.Add(1)
		go func() {
			// The unrelated cold-slice writer: commits as fast as
			// durability allows, each window then crawling through the
			// slow replica's apply stage.
			defer coldWG.Done()
			for i := int64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := CommitRecord(skewedColdPage, i)
				lsn, err := c.SAL.Write(rec)
				if err == nil {
					err = c.SAL.WaitDurable(lsn)
				}
				if err != nil {
					errs[hotWriters] = err
					return
				}
			}
		}()
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < hotWriters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					rec := CommitRecord(uint64(w+1), int64(i)+1)
					t0 := time.Now()
					lsn, err := c.SAL.Write(rec)
					if err == nil {
						err = c.SAL.WaitDurable(lsn)
					}
					if err != nil {
						errs[w] = err
						return
					}
					lat.ObserveDuration(time.Since(t0))
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(stop)
		coldWG.Wait()
		if mode.lanes {
			promotions = c.SAL.Stats().Promotions
		}
		c.Close()
		os.RemoveAll(dir)
		for _, err := range errs {
			if err != nil {
				return nil, 0, err
			}
		}
		snap := lat.Snapshot()
		rows = append(rows, WritePathRow{
			Mode: mode.name, Workers: hotWriters, Commits: hotWriters * per,
			OpsPerSec: float64(hotWriters*per) / elapsed.Seconds(),
			P50Micros: snap.P50 * 1e6,
			P99Micros: snap.P99 * 1e6,
		})
	}
	return rows, promotions, nil
}

// WritePathReport is the persisted BENCH_writepath.json payload.
type WritePathReport struct {
	Bench string         `json:"bench"`
	Meta  RunMeta        `json:"meta"`
	Rows  []WritePathRow `json:"rows"`
	// Speedup8Writers is pipelined/serial throughput at 8 workers (the
	// acceptance headline).
	Speedup8Writers float64 `json:"speedup_8_writers"`
	// SkewedRows measures hot-slice commit latency beside a slow
	// replica behind a different slice, with and without per-slice
	// lanes; SkewedHotP99ImprovementX is the p99 ratio (global-window /
	// slice-lanes), and SkewedPromotions is how many slices the lanes
	// run promoted.
	SkewedRows               []WritePathRow `json:"skewed_rows,omitempty"`
	SkewedHotP99ImprovementX float64        `json:"skewed_hot_p99_improvement_x,omitempty"`
	SkewedPromotions         uint64         `json:"skewed_promotions,omitempty"`
	// TraceOverhead is the pipelined path re-run with the distributed
	// tracer wired in at sampling 0 and 1.0; the sampling-0 number is
	// what the ≤5% regression gate compares against the untraced rows.
	TraceOverhead *TraceOverheadResult `json:"trace_overhead,omitempty"`
}

// BuildWritePathReport derives the headline speedup from the rows.
func BuildWritePathReport(rows []WritePathRow) WritePathReport {
	rep := WritePathReport{Bench: "writepath", Meta: NewRunMeta(), Rows: rows}
	var serial8, pipe8 float64
	for _, r := range rows {
		if r.Workers == 8 {
			switch r.Mode {
			case "serial-flush":
				serial8 = r.OpsPerSec
			case "pipelined":
				pipe8 = r.OpsPerSec
			}
		}
	}
	if serial8 > 0 {
		rep.Speedup8Writers = pipe8 / serial8
	}
	return rep
}

// AddSkewed attaches the skewed-slice rows and derives the hot-commit
// p99 delta.
func (rep *WritePathReport) AddSkewed(rows []WritePathRow, promotions uint64) {
	rep.SkewedRows = rows
	rep.SkewedPromotions = promotions
	var global, lanes float64
	for _, r := range rows {
		switch r.Mode {
		case "skew-global-window":
			global = r.P99Micros
		case "skew-slice-lanes":
			lanes = r.P99Micros
		}
	}
	if lanes > 0 {
		rep.SkewedHotP99ImprovementX = global / lanes
	}
}

// WriteWritePathJSON persists the report.
func WriteWritePathJSON(path string, rep WritePathReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// PrintWritePath renders the write-path table.
func PrintWritePath(w io.Writer, rows []WritePathRow) {
	fmt.Fprintln(w, "Durable commit throughput: serial flush (pre-pipeline) vs pipelined group commit:")
	fmt.Fprintf(w, "  %-14s %8s %9s %12s %10s %10s\n", "mode", "workers", "commits", "commits/s", "p50(µs)", "p99(µs)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s %8d %9d %12.0f %10.0f %10.0f\n",
			r.Mode, r.Workers, r.Commits, r.OpsPerSec, r.P50Micros, r.P99Micros)
	}
	rep := BuildWritePathReport(rows)
	if rep.Speedup8Writers > 0 {
		fmt.Fprintf(w, "  8-writer speedup: %.1fx (pipelined over serial)\n", rep.Speedup8Writers)
	}
}

// PrintTraceOverhead renders the tracing-tax comparison.
func PrintTraceOverhead(w io.Writer, res TraceOverheadResult) {
	fmt.Fprintln(w, "Tracing overhead on the pipelined write path (tracer wired in, sampling 0 vs 1.0):")
	fmt.Fprintf(w, "  %-14s %8s %9s %12s\n", "sampling", "workers", "commits", "commits/s")
	fmt.Fprintf(w, "  %-14s %8d %9d %12.0f\n", "0", res.Workers, res.Commits, res.Sample0OpsPerSec)
	fmt.Fprintf(w, "  %-14s %8d %9d %12.0f\n", "1.0", res.Workers, res.Commits, res.Sample1OpsPerSec)
	fmt.Fprintf(w, "  every-commit tracing costs %.1f%% throughput\n", res.OverheadPct)
}

// PrintSkewedWritePath renders the skewed-slice table.
func PrintSkewedWritePath(w io.Writer, rows []WritePathRow, promotions uint64) {
	fmt.Fprintln(w, "Hot-slice commits beside a slow replica on an unrelated slice (global window vs per-slice lanes):")
	fmt.Fprintf(w, "  %-18s %8s %9s %12s %10s %10s\n", "mode", "workers", "commits", "commits/s", "p50(µs)", "p99(µs)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s %8d %9d %12.0f %10.0f %10.0f\n",
			r.Mode, r.Workers, r.Commits, r.OpsPerSec, r.P50Micros, r.P99Micros)
	}
	var rep WritePathReport
	rep.AddSkewed(rows, promotions)
	if rep.SkewedHotP99ImprovementX > 0 {
		fmt.Fprintf(w, "  hot-commit p99 improvement: %.1fx (%d slice(s) promoted to dedicated lanes)\n",
			rep.SkewedHotP99ImprovementX, promotions)
	}
}
