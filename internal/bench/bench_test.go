package bench

import (
	"strings"
	"testing"
	"time"

	"taurus/internal/tpch"
)

var sharedFixture *Fixture

func fixture(t testing.TB) *Fixture {
	t.Helper()
	if sharedFixture == nil {
		f, err := NewFixture(0.005)
		if err != nil {
			t.Fatal(err)
		}
		sharedFixture = f
	}
	return sharedFixture
}

func TestRunQueryMeasures(t *testing.T) {
	f := fixture(t)
	q, _ := tpch.QueryByName("Q6")
	f.DB.Eng.Pool().Clear()
	m, err := f.RunQuery(q, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 1 {
		t.Errorf("Q6 rows = %d", m.Rows)
	}
	if m.NetBytes == 0 || m.SQLCPUUnits == 0 {
		t.Errorf("measurement incomplete: %+v", m)
	}
	if m.StoreRecords == 0 {
		t.Error("NDP run should show store-side record processing")
	}
	w := m.Work()
	if w.NetBytes == 0 || w.ParallelCPUUnits <= 0 {
		t.Errorf("work conversion: %+v", w)
	}
}

func TestFig5Shape(t *testing.T) {
	f := fixture(t)
	rows, err := f.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// "With NDP, network reads are reduced to negligible amounts for the
	// COUNT(*) queries and Q6. The reduction is less for Q1 but is still
	// considerable."
	byName := map[string]Fig5Row{}
	for _, r := range rows {
		byName[r.Query] = r
	}
	for _, name := range []string{"Q0", "Q001", "Q002", "Q6"} {
		if byName[name].ReductionPct < 90 {
			t.Errorf("%s network reduction = %.1f%%, want ≥90%%", name, byName[name].ReductionPct)
		}
	}
	q1 := byName["Q1"]
	if q1.ReductionPct < 40 {
		t.Errorf("Q1 reduction = %.1f%%, want considerable (≥40%%)", q1.ReductionPct)
	}
	if q1.ReductionPct > byName["Q6"].ReductionPct {
		t.Error("Q1 reduction should be less than Q6's")
	}
	var sb strings.Builder
	PrintFig5(&sb, rows)
	if !strings.Contains(sb.String(), "Fig. 5") {
		t.Error("report missing header")
	}
}

func TestFig6Shape(t *testing.T) {
	f := fixture(t)
	rows, err := f.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// PQ+NDP must beat PQ-only and approach the theoretical max for
		// the I/O-bound scans.
		if r.PQandNDPPct < r.PQOnlyPct-0.5 {
			t.Errorf("%s: PQ+NDP %.1f%% should be ≥ PQ-only %.1f%%", r.Query, r.PQandNDPPct, r.PQOnlyPct)
		}
		// NDP can push reductions past the pure-parallelism bound
		// because it removes work outright; sanity-cap at 100%.
		if r.PQandNDPPct > 100 {
			t.Errorf("%s: reduction beyond 100%%", r.Query)
		}
	}
	// The full-table-scan queries bottleneck on I/O without NDP: their
	// PQ-only reduction stays clearly below the theoretical 96.9%.
	byName := map[string]Fig6Row{}
	for _, r := range rows {
		byName[r.Query] = r
	}
	for _, name := range []string{"Q0", "Q001", "Q6"} {
		if byName[name].PQOnlyPct >= byName[name].TheoreticalPct-3 {
			t.Errorf("%s: PQ-only %.1f%% should be capped by the I/O bottleneck", name, byName[name].PQOnlyPct)
		}
		if byName[name].PQandNDPPct < byName[name].TheoreticalPct-8 {
			t.Errorf("%s: PQ+NDP %.1f%% should approach the theoretical max", name, byName[name].PQandNDPPct)
		}
	}
	var sb strings.Builder
	PrintFig6(&sb, rows)
	if !strings.Contains(sb.String(), "DOP 32") {
		t.Error("report missing header")
	}
}

func TestFig7Shape(t *testing.T) {
	f := fixture(t)
	res, err := f.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 22 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	byName := map[string]Fig7Row{}
	for _, r := range res.Rows {
		byName[r.Query] = r
	}
	// Queries with no NDP see no reduction.
	for _, name := range []string{"Q11", "Q17", "Q19", "Q20"} {
		r := byName[name]
		if r.NDPUsed {
			t.Errorf("%s should not use NDP", name)
		}
		if r.NetReductionPct > 5 || r.NetReductionPct < -5 {
			t.Errorf("%s net reduction = %.1f%%, want ≈0", name, r.NetReductionPct)
		}
	}
	// The heavy-pushdown queries show strong network reduction.
	for _, name := range []string{"Q6", "Q12", "Q14", "Q15"} {
		if r := byName[name]; r.NetReductionPct < 70 {
			t.Errorf("%s net reduction = %.1f%%, want ≥70%%", name, r.NetReductionPct)
		}
	}
	// Headline aggregates in the right neighbourhood (paper: 63%/50%,
	// 18 of 22).
	if res.TotalNetPct < 35 {
		t.Errorf("total network reduction = %.1f%%, want substantial", res.TotalNetPct)
	}
	if res.TotalCPUPct < 20 {
		t.Errorf("total CPU reduction = %.1f%%, want substantial", res.TotalCPUPct)
	}
	if res.QueriesBenefit < 12 {
		t.Errorf("only %d queries benefited", res.QueriesBenefit)
	}
	var sb strings.Builder
	PrintFig7(&sb, res)
	if !strings.Contains(sb.String(), "TOTAL") {
		t.Error("report missing totals")
	}
}

func TestFig8Shape(t *testing.T) {
	f := fixture(t)
	res, err := f.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 22 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.TotalPct < 10 {
		t.Errorf("total runtime reduction = %.1f%%", res.TotalPct)
	}
	if res.CountOver60 < 3 {
		t.Errorf("only %d queries ≥60%% (paper: 7)", res.CountOver60)
	}
	byName := map[string]Fig8Row{}
	for _, r := range res.Rows {
		byName[r.Query] = r
	}
	if byName["Q6"].ReductionPct < 60 {
		t.Errorf("Q6 runtime reduction = %.1f%%", byName["Q6"].ReductionPct)
	}
	var sb strings.Builder
	PrintFig8(&sb, res)
	if !strings.Contains(sb.String(), "Fig. 8") {
		t.Error("report header missing")
	}
}

func TestFig9Shape(t *testing.T) {
	f := fixture(t)
	rows, err := f.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	max := (1 - 1.0/16) * 100
	byName := map[string]Fig9Row{}
	for _, r := range rows {
		byName[r.Query] = r
		if r.ReductionPct > max+0.1 {
			t.Errorf("%s beyond theoretical max", r.Query)
		}
	}
	// Q15's serial NL join caps its gain at roughly half the max.
	if q15 := byName["Q15"]; q15.ReductionPct > max*0.75 {
		t.Errorf("Q15 reduction = %.1f%%, should be capped well below %.1f%%", q15.ReductionPct, max)
	}
	// Q1 approaches the maximum.
	if q1 := byName["Q1"]; q1.ReductionPct < max*0.75 {
		t.Errorf("Q1 reduction = %.1f%%, want near max", q1.ReductionPct)
	}
	var sb strings.Builder
	PrintFig9(&sb, rows)
	if !strings.Contains(sb.String(), "DOP 16") {
		t.Error("report header missing")
	}
}

func TestQ4BufferPoolEffect(t *testing.T) {
	f := fixture(t)
	noNDP, withNDP, err := f.Q4BufferPool()
	if err != nil {
		t.Fatal(err)
	}
	// "When Q1 through Q3 ran with NDP disabled, the resulting buffer
	// pool had 1,272,972 Lineitem pages. [With NDP] only 24,186."
	if noNDP == 0 {
		t.Fatal("no-NDP sequence should warm the pool with lineitem pages")
	}
	if withNDP*5 > noNDP {
		t.Errorf("NDP resident=%d should be ≪ no-NDP resident=%d", withNDP, noNDP)
	}
}

func TestSortedByQueryNumber(t *testing.T) {
	rows := []Fig7Row{{Query: "Q10"}, {Query: "Q2"}, {Query: "Q1"}}
	s := SortedByQueryNumber(rows)
	if s[0].Query != "Q1" || s[1].Query != "Q2" || s[2].Query != "Q10" {
		t.Errorf("order: %v", s)
	}
}

// TestCheckpointRecoveryShape pins the checkpoint-recovery experiment's
// invariants: both modes run, the checkpointed restart replays only the
// post-checkpoint tail, and the full-replay baseline sees everything.
func TestCheckpointRecoveryShape(t *testing.T) {
	rows, err := CheckpointRecovery([]int{4000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "full-replay" || rows[1].Mode != "checkpoint+tail" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Replayed != 4000 {
		t.Fatalf("full replay applied %d of 4000", rows[0].Replayed)
	}
	if rows[1].Replayed == 0 || rows[1].Replayed*4 > rows[0].Replayed {
		t.Fatalf("checkpoint+tail replayed %d, want only the ~5%% tail", rows[1].Replayed)
	}
}

// TestSkewedWritePathSmoke runs the skewed-slice scenario (hot slice +
// slow replica behind a different slice) with tiny parameters: both
// modes complete, the lanes mode promotes the hot slice, and the report
// derives the p99 delta.
func TestSkewedWritePathSmoke(t *testing.T) {
	rows, promotions, err := SkewedWritePath(48, 2, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (global-window and slice-lanes)", len(rows))
	}
	for _, r := range rows {
		if r.Commits == 0 || r.P99Micros == 0 {
			t.Fatalf("empty row: %+v", r)
		}
	}
	if promotions == 0 {
		t.Fatal("lanes mode never promoted the hot slice")
	}
	var rep WritePathReport
	rep.AddSkewed(rows, promotions)
	if rep.SkewedHotP99ImprovementX <= 0 {
		t.Fatalf("no p99 delta derived: %+v", rep)
	}
}
