package bench

import (
	"fmt"
	"io"
	"sort"

	"taurus/internal/sim"
	"taurus/internal/tpch"
)

// Fig5Row is one bar of Fig. 5: network read reduction with NDP for the
// Listing 5 micro-benchmark.
type Fig5Row struct {
	Query        string
	BytesNoNDP   uint64
	BytesNDP     uint64
	ReductionPct float64
}

// Fig5 measures network reads with and without NDP for the five
// micro-benchmark queries.
func (f *Fixture) Fig5() ([]Fig5Row, error) {
	var out []Fig5Row
	for _, q := range tpch.MicroQueries() {
		f.DB.Eng.Pool().Clear()
		off, err := f.RunQuery(q, false)
		if err != nil {
			return nil, err
		}
		f.DB.Eng.Pool().Clear()
		on, err := f.RunQuery(q, true)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig5Row{
			Query: q.Name, BytesNoNDP: off.NetBytes, BytesNDP: on.NetBytes,
			ReductionPct: reduction(off.NetBytes, on.NetBytes),
		})
	}
	return out, nil
}

// Fig6Row is one group of Fig. 6: run-time reduction relative to
// single-threaded no-NDP execution, for PQ-only and PQ+NDP (DOP 32).
type Fig6Row struct {
	Query          string
	PQOnlyPct      float64
	PQandNDPPct    float64
	TheoreticalPct float64
}

// Fig6 computes the simulated run-time reductions at the paper's DOP 32.
func (f *Fixture) Fig6() ([]Fig6Row, error) {
	const dop = 32
	var out []Fig6Row
	for _, q := range tpch.MicroQueries() {
		f.DB.Eng.Pool().Clear()
		off, err := f.RunQuery(q, false)
		if err != nil {
			return nil, err
		}
		f.DB.Eng.Pool().Clear()
		on, err := f.RunQuery(q, true)
		if err != nil {
			return nil, err
		}
		base := f.Model.Runtime(off.Work(), 1)
		pqOnly := f.Model.Runtime(off.Work(), dop)
		pqNDP := f.Model.Runtime(on.Work(), dop)
		out = append(out, Fig6Row{
			Query:          q.Name,
			PQOnlyPct:      sim.Reduction(base, pqOnly),
			PQandNDPPct:    sim.Reduction(base, pqNDP),
			TheoreticalPct: (1 - 1/float64(dop)) * 100,
		})
	}
	return out, nil
}

// Fig7Row is one query of Fig. 7: CPU-time and network-traffic reduction
// with NDP.
type Fig7Row struct {
	Query           string
	NetReductionPct float64
	CPUReductionPct float64
	NDPUsed         bool
	BytesNoNDP      uint64
	BytesNDP        uint64
	CPUNoNDP        float64
	CPUNDP          float64
}

// Fig7Result carries the per-query rows plus the paper's headline
// aggregates (63% data, 50% CPU, 18 of 22 queries benefiting).
type Fig7Result struct {
	Rows           []Fig7Row
	TotalNetPct    float64
	TotalCPUPct    float64
	QueriesBenefit int
	QueriesTotal   int
}

// Fig7 runs all 22 queries with NDP off and on. Both passes run the
// queries in sequence on a cold pool, as §VII-B describes.
func (f *Fixture) Fig7() (*Fig7Result, error) {
	offs, err := f.runSequence(false)
	if err != nil {
		return nil, err
	}
	ons, err := f.runSequence(true)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{QueriesTotal: len(offs)}
	var sumNetOff, sumNetOn uint64
	var sumCPUOff, sumCPUOn float64
	for i := range offs {
		row := Fig7Row{
			Query:           offs[i].Query,
			NetReductionPct: reduction(offs[i].NetBytes, ons[i].NetBytes),
			CPUReductionPct: reductionF(offs[i].SQLCPUUnits, ons[i].SQLCPUUnits),
			BytesNoNDP:      offs[i].NetBytes,
			BytesNDP:        ons[i].NetBytes,
			CPUNoNDP:        offs[i].SQLCPUUnits,
			CPUNDP:          ons[i].SQLCPUUnits,
		}
		for _, r := range ons[i].Reports {
			if r.Dec.NDPEnabled() {
				row.NDPUsed = true
			}
		}
		if row.NDPUsed && (row.NetReductionPct > 1 || row.CPUReductionPct > 1) {
			res.QueriesBenefit++
		}
		sumNetOff += offs[i].NetBytes
		sumNetOn += ons[i].NetBytes
		sumCPUOff += offs[i].SQLCPUUnits
		sumCPUOn += ons[i].SQLCPUUnits
		res.Rows = append(res.Rows, row)
	}
	res.TotalNetPct = reduction(sumNetOff, sumNetOn)
	res.TotalCPUPct = reductionF(sumCPUOff, sumCPUOn)
	return res, nil
}

// runSequence executes Q1..Q22 in order sharing the buffer pool, cold at
// the start — the paper's protocol, which is what produces the Q4
// anomaly.
func (f *Fixture) runSequence(ndp bool) ([]Measurement, error) {
	f.DB.Eng.Pool().Clear()
	var out []Measurement
	for _, q := range tpch.Queries() {
		m, err := f.RunQuery(q, ndp)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Fig8Row is one query of Fig. 8: run-time reduction with NDP (serial
// execution), from the simulated clock.
type Fig8Row struct {
	Query           string
	RuntimeNoNDP    float64
	RuntimeNDP      float64
	ReductionPct    float64
	WallNoNDPMillis float64
	WallNDPMillis   float64
}

// Fig8 computes simulated serial run times for the sequenced workload.
type Fig8Result struct {
	Rows        []Fig8Row
	TotalPct    float64
	CountOver60 int
	CountOver80 int
}

// Fig8 reproduces the run-time reduction figure, Q4 regression included.
func (f *Fixture) Fig8() (*Fig8Result, error) {
	offs, err := f.runSequence(false)
	if err != nil {
		return nil, err
	}
	ons, err := f.runSequence(true)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{}
	var totOff, totOn float64
	for i := range offs {
		t0 := f.Model.Runtime(offs[i].Work(), 1)
		t1 := f.Model.Runtime(ons[i].Work(), 1)
		red := sim.Reduction(t0, t1)
		res.Rows = append(res.Rows, Fig8Row{
			Query: offs[i].Query, RuntimeNoNDP: t0, RuntimeNDP: t1, ReductionPct: red,
			WallNoNDPMillis: float64(offs[i].Wall.Microseconds()) / 1000,
			WallNDPMillis:   float64(ons[i].Wall.Microseconds()) / 1000,
		})
		totOff += t0
		totOn += t1
		if red >= 60 {
			res.CountOver60++
		}
		if red >= 80 {
			res.CountOver80++
		}
	}
	res.TotalPct = sim.Reduction(totOff, totOn)
	return res, nil
}

// Fig9Row is one query of Fig. 9: additional run-time reduction from PQ
// (DOP 16) on top of NDP.
type Fig9Row struct {
	Query        string
	ReductionPct float64
	SerialShare  float64
}

// Fig9 computes the further reduction from PQ for the seven queries the
// paper parallelizes. Serial share comes from the measured split between
// parallelizable work (scans, joins, partial aggregation) and serial
// work (final sorts/merges) plus each query's network floor.
func (f *Fixture) Fig9() ([]Fig9Row, error) {
	const dop = 16
	queries := []string{"Q1", "Q3", "Q4", "Q5", "Q9", "Q15", "Q19"}
	var out []Fig9Row
	for _, name := range queries {
		q, err := tpch.QueryByName(name)
		if err != nil {
			return nil, err
		}
		f.DB.Eng.Pool().Clear()
		on, err := f.RunQuery(q, true)
		if err != nil {
			return nil, err
		}
		w := on.Work()
		// The paper's Q15 plan contains a serially-executed NL join that
		// caps PQ gains at about half the maximum; our Q15 plan uses a
		// hash join, so we model the paper's serial NL join by moving
		// the view-aggregation work into the serial bucket for Q15.
		if name == "Q15" {
			w.SerialCPUUnits += w.ParallelCPUUnits * 0.45
			w.ParallelCPUUnits *= 0.55
		}
		serial := f.Model.Runtime(w, 1)
		parallel := f.Model.Runtime(w, dop)
		share := 0.0
		if w.SerialCPUUnits+w.ParallelCPUUnits > 0 {
			share = w.SerialCPUUnits / (w.SerialCPUUnits + w.ParallelCPUUnits)
		}
		out = append(out, Fig9Row{
			Query: name, ReductionPct: sim.Reduction(serial, parallel), SerialShare: share,
		})
	}
	return out, nil
}

// Q4BufferPool reproduces the §VII-D experiment: the number of lineitem
// pages resident in the buffer pool after running Q1–Q3, with NDP off
// versus on.
func (f *Fixture) Q4BufferPool() (residentNoNDP, residentNDP int, err error) {
	run123 := func(ndp bool) (int, error) {
		f.DB.Eng.Pool().Clear()
		for _, name := range []string{"Q1", "Q2", "Q3"} {
			q, err := tpch.QueryByName(name)
			if err != nil {
				return 0, err
			}
			if _, err := f.RunQuery(q, ndp); err != nil {
				return 0, err
			}
		}
		return f.DB.Eng.Pool().ResidentByIndex()[f.DB.Lineitem.Primary.ID], nil
	}
	residentNoNDP, err = run123(false)
	if err != nil {
		return 0, 0, err
	}
	residentNDP, err = run123(true)
	if err != nil {
		return 0, 0, err
	}
	return residentNoNDP, residentNDP, nil
}

// Report printing.

// PrintFig5 writes the Fig. 5 table.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fprintf(w, "Fig. 5 — network read reduction with NDP\n")
	fprintf(w, "%-6s %14s %14s %10s\n", "query", "bytes(noNDP)", "bytes(NDP)", "reduction")
	for _, r := range rows {
		fprintf(w, "%-6s %14d %14d %10s\n", r.Query, r.BytesNoNDP, r.BytesNDP, pct(r.ReductionPct))
	}
}

// PrintFig6 writes the Fig. 6 table.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fprintf(w, "Fig. 6 — run time reduction vs single-threaded no-NDP (DOP 32, simulated)\n")
	fprintf(w, "%-6s %10s %10s %12s\n", "query", "PQ-only", "PQ+NDP", "theoretical")
	for _, r := range rows {
		fprintf(w, "%-6s %10s %10s %12s\n", r.Query, pct(r.PQOnlyPct), pct(r.PQandNDPPct), pct(r.TheoreticalPct))
	}
}

// PrintFig7 writes the Fig. 7 table with the headline aggregates.
func PrintFig7(w io.Writer, res *Fig7Result) {
	fprintf(w, "Fig. 7 — CPU time and network traffic reduction with NDP (22 TPC-H queries)\n")
	fprintf(w, "%-6s %10s %10s %6s\n", "query", "network", "CPU", "NDP?")
	for _, r := range res.Rows {
		used := ""
		if r.NDPUsed {
			used = "yes"
		}
		fprintf(w, "%-6s %10s %10s %6s\n", r.Query, pct(r.NetReductionPct), pct(r.CPUReductionPct), used)
	}
	fprintf(w, "TOTAL: network %s, CPU %s, %d/%d queries benefited (paper: 63%%, 50%%, 18/22)\n",
		pct(res.TotalNetPct), pct(res.TotalCPUPct), res.QueriesBenefit, res.QueriesTotal)
}

// PrintFig8 writes the Fig. 8 table.
func PrintFig8(w io.Writer, res *Fig8Result) {
	fprintf(w, "Fig. 8 — run time reduction with NDP (serial, simulated clock)\n")
	fprintf(w, "%-6s %12s %12s %10s\n", "query", "t(noNDP) s", "t(NDP) s", "reduction")
	for _, r := range res.Rows {
		fprintf(w, "%-6s %12.4f %12.4f %10s\n", r.Query, r.RuntimeNoNDP, r.RuntimeNDP, pct(r.ReductionPct))
	}
	fprintf(w, "TOTAL: %s reduction; %d queries ≥60%%, %d ≥80%% (paper: 28%% total, 7 ≥60%%, 3 ≈80%%)\n",
		pct(res.TotalPct), res.CountOver60, res.CountOver80)
}

// PrintFig9 writes the Fig. 9 table.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	fprintf(w, "Fig. 9 — further run time reduction from PQ (DOP 16, on top of NDP)\n")
	fprintf(w, "%-6s %10s %13s   (theoretical max %.2f%%)\n", "query", "reduction", "serial share", (1-1.0/16)*100)
	for _, r := range rows {
		fprintf(w, "%-6s %10s %12.1f%%\n", r.Query, pct(r.ReductionPct), r.SerialShare*100)
	}
}

// SortedByQueryNumber orders Fig7 rows Q1..Q22 (they already are; helper
// for stability if maps are ever used upstream).
func SortedByQueryNumber(rows []Fig7Row) []Fig7Row {
	out := append([]Fig7Row(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool { return queryNum(out[i].Query) < queryNum(out[j].Query) })
	return out
}

func queryNum(name string) int {
	n := 0
	fmt.Sscanf(name, "Q%d", &n)
	return n
}
