package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"taurus/internal/logstore"
	"taurus/internal/page"
	"taurus/internal/pagestore"
	"taurus/internal/pstore"
	"taurus/internal/types"
	"taurus/internal/wal"
)

// CheckpointRow is one line of the checkpoint-recovery experiment: how
// long a restarted Page Store takes to become current, with and without
// a checkpoint.
type CheckpointRow struct {
	Records int
	Mode    string
	// Replayed is how many log records the recovery applied (the whole
	// log for full replay, the tail above the checkpoint otherwise).
	Replayed int
	Elapsed  time.Duration
	// Speedup is full-replay time / this mode's time (1.0 for the
	// full-replay baseline itself).
	Speedup float64
}

// checkpointWorkload drives records (from, to] through a Log Store and
// a Page Store slice, the way the SAL does: FormatPage at each fresh
// page boundary, appended rows otherwise.
func checkpointWorkload(ls *logstore.Store, ps *pagestore.Store, from, to uint64) error {
	ps.CreateSlice(1, 0)
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindInt},
	)
	const rowsPerPage = 64
	const batch = 64
	lsn := from
	var enc []byte
	flush := func() error {
		if len(enc) == 0 {
			return nil
		}
		if _, err := ls.Append(enc); err != nil {
			return err
		}
		if _, err := ps.WriteLogs(1, 0, enc); err != nil {
			return err
		}
		enc = enc[:0]
		return nil
	}
	for lsn < to {
		lsn++
		id := int64(lsn)
		pageID := (lsn - 1) / rowsPerPage
		rec := wal.Record{LSN: lsn, Type: wal.TypeFormatPage, PageID: pageID, IndexID: 1}
		if (lsn-1)%rowsPerPage != 0 {
			key := types.EncodeKey(nil, types.Row{types.NewInt(id)})
			row := types.EncodeRow(nil, schema, types.Row{types.NewInt(id), types.NewInt(id % 7)})
			rec = wal.Record{
				LSN: lsn, Type: wal.TypeInsertRec, PageID: pageID, Off: wal.OffAppend,
				TrxID: lsn, Payload: page.EncodeLeafPayload(nil, key, row),
			}
		}
		enc = rec.Encode(enc)
		if lsn%batch == 0 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// replayInto applies records to a fresh store in batches, returning how
// many were applied.
func replayInto(ps *pagestore.Store, recs []wal.Record) (int, error) {
	ps.CreateSlice(1, 0)
	var enc []byte
	const batch = 64
	applied := 0
	for at := 0; at < len(recs); at += batch {
		end := at + batch
		if end > len(recs) {
			end = len(recs)
		}
		enc = enc[:0]
		for i := at; i < end; i++ {
			enc = recs[i].Encode(enc)
		}
		if _, err := ps.WriteLogs(1, 0, enc); err != nil {
			return applied, err
		}
		applied = end
	}
	return applied, nil
}

// CheckpointRecovery measures Page Store recovery time at increasing
// log sizes: full log replay (no checkpoint, the PR-1 path) against
// checkpoint + tail replay, after the checkpoint's watermark let the
// Log Store truncate the covered prefix.
func CheckpointRecovery(sizes []int) ([]CheckpointRow, error) {
	if len(sizes) == 0 {
		sizes = []int{10000, 50000, 200000}
	}
	var rows []CheckpointRow
	for _, n := range sizes {
		logDir, err := os.MkdirTemp("", "taurus-ckpt-log-*")
		if err != nil {
			return nil, err
		}
		ckDir, err := os.MkdirTemp("", "taurus-ckpt-ps-*")
		if err != nil {
			os.RemoveAll(logDir)
			return nil, err
		}
		row, err := checkpointRecoveryOne(n, logDir, ckDir)
		os.RemoveAll(logDir)
		os.RemoveAll(ckDir)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row...)
	}
	return rows, nil
}

func checkpointRecoveryOne(n int, logDir, ckDir string) ([]CheckpointRow, error) {
	ls, err := logstore.Open("bench", logDir, logstore.WithNoSync(), logstore.WithSegmentBytes(1<<20))
	if err != nil {
		return nil, err
	}
	cs, err := pstore.Open(pstore.Options{Dir: ckDir, NoSync: true})
	if err != nil {
		ls.Close()
		return nil, err
	}
	ps := pagestore.New("bench", pagestore.WithCheckpoints(cs))
	// Load ~95% of the workload, checkpoint, then a 5% tail on top —
	// the steady state a periodic checkpointer maintains.
	prefix := uint64(n * 95 / 100)
	if err := checkpointWorkload(ls, ps, 0, prefix); err != nil {
		ls.Close()
		return nil, err
	}
	st, err := ps.Checkpoint()
	if err != nil {
		ls.Close()
		return nil, err
	}
	w := st.PersistedLSN
	if err := checkpointWorkload(ls, ps, prefix, uint64(n)); err != nil {
		ls.Close()
		return nil, err
	}

	// Baseline first, while the log still holds everything: a fresh
	// node replays the full log.
	start := time.Now()
	ls2, err := logstore.Open("bench", logDir, logstore.WithNoSync())
	if err != nil {
		ls.Close()
		return nil, err
	}
	full, err := replayInto(pagestore.New("bench-full"), ls2.ReadFrom(0))
	fullElapsed := time.Since(start)
	ls2.Close()
	if err != nil {
		ls.Close()
		return nil, err
	}

	// Now the watermark-driven GC the checkpoint enables: the covered
	// prefix disappears from the log before the restart.
	if _, _, err := ls.TruncateBelow(w + 1); err != nil {
		ls.Close()
		return nil, err
	}
	if err := ls.Close(); err != nil {
		return nil, err
	}

	start = time.Now()
	ls3, err := logstore.Open("bench", logDir, logstore.WithNoSync())
	if err != nil {
		return nil, err
	}
	cs3, err := pstore.Open(pstore.Options{Dir: ckDir, NoSync: true})
	if err != nil {
		ls3.Close()
		return nil, err
	}
	ps3 := pagestore.New("bench-ckpt", pagestore.WithCheckpoints(cs3))
	if _, err := ps3.Restore(); err != nil {
		ls3.Close()
		return nil, err
	}
	tail, err := replayInto(ps3, ls3.ReadFrom(w))
	ckElapsed := time.Since(start)
	ls3.Close()
	if err != nil {
		return nil, err
	}
	return []CheckpointRow{
		{Records: n, Mode: "full-replay", Replayed: full, Elapsed: fullElapsed, Speedup: 1},
		{Records: n, Mode: "checkpoint+tail", Replayed: tail, Elapsed: ckElapsed,
			Speedup: float64(fullElapsed) / float64(ckElapsed)},
	}, nil
}

// PrintCheckpoint renders the checkpoint-recovery table.
func PrintCheckpoint(w io.Writer, rows []CheckpointRow) {
	fmt.Fprintln(w, "Page Store recovery: full log replay vs checkpoint + tail replay:")
	fmt.Fprintf(w, "  %10s %-16s %10s %12s %9s\n", "records", "mode", "replayed", "elapsed", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "  %10d %-16s %10d %12s %8.1fx\n",
			r.Records, r.Mode, r.Replayed, r.Elapsed.Round(time.Microsecond), r.Speedup)
	}
	fmt.Fprintln(w, "  (the checkpoint bounds recovery to the log tail; the covered prefix is GC'd)")
}
