package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"taurus/internal/logstore"
	"taurus/internal/plog"
	"taurus/internal/wal"
)

// DurabilityRow is one line of the group-commit experiment: total
// appends acknowledged durably per second, and how many fsyncs it took.
type DurabilityRow struct {
	Mode          string
	Workers       int
	Appends       int
	Elapsed       time.Duration
	AppendsPerSec float64
	Syncs         uint64
}

// Durability measures acknowledged-append throughput of the persistent
// log under concurrent appenders: group commit (batched fsync) against
// an fsync per append. Both modes write the same entries; the only
// difference is how many syncs cover them.
func Durability(appends int, workerCounts []int) ([]DurabilityRow, error) {
	if appends <= 0 {
		appends = 2000
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 8, 32}
	}
	var rows []DurabilityRow
	payload := make([]byte, 256)
	for _, mode := range []struct {
		name string
		opts plog.Options
	}{
		{"group-commit", plog.Options{FlushInterval: time.Millisecond}},
		{"sync-per-append", plog.Options{SyncEveryAppend: true}},
	} {
		for _, workers := range workerCounts {
			dir, err := os.MkdirTemp("", "taurus-durability-*")
			if err != nil {
				return nil, err
			}
			opts := mode.opts
			opts.Dir = dir
			l, err := plog.Open(opts)
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			per := appends / workers
			start := time.Now()
			var wg sync.WaitGroup
			errs := make([]error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := l.Append(uint64(w*per+i+1), payload); err != nil {
							errs[w] = err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			st := l.Snapshot()
			l.Close()
			os.RemoveAll(dir)
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			rows = append(rows, DurabilityRow{
				Mode: mode.name, Workers: workers, Appends: workers * per,
				Elapsed:       elapsed,
				AppendsPerSec: float64(workers*per) / elapsed.Seconds(),
				Syncs:         st.Syncs,
			})
		}
	}
	return rows, nil
}

// PrintDurability renders the group-commit table.
func PrintDurability(w io.Writer, rows []DurabilityRow) {
	fmt.Fprintln(w, "Durable append throughput (segmented log, 256 B records):")
	fmt.Fprintf(w, "  %-16s %8s %9s %12s %8s\n", "mode", "workers", "appends", "appends/s", "fsyncs")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %8d %9d %12.0f %8d\n",
			r.Mode, r.Workers, r.Appends, r.AppendsPerSec, r.Syncs)
	}
	fmt.Fprintln(w, "  (group commit amortizes one fsync across all appenders in the window)")
}

// RecoveryRow is one line of the recovery-time experiment.
type RecoveryRow struct {
	Records       int
	Segments      int
	Elapsed       time.Duration
	RecordsPerSec float64
}

// RecoveryTimes builds Log Stores of increasing record counts, then
// measures how long a restarted store takes to replay, validate (CRC),
// and re-index them.
func RecoveryTimes(sizes []int) ([]RecoveryRow, error) {
	if len(sizes) == 0 {
		sizes = []int{10000, 50000, 200000}
	}
	var rows []RecoveryRow
	for _, n := range sizes {
		dir, err := os.MkdirTemp("", "taurus-recovery-*")
		if err != nil {
			return nil, err
		}
		s, err := logstore.Open("bench", dir, logstore.WithNoSync(), logstore.WithSegmentBytes(1<<20))
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		var enc []byte
		lsn := uint64(0)
		const batch = 64
		for lsn < uint64(n) {
			enc = enc[:0]
			for i := 0; i < batch && lsn < uint64(n); i++ {
				lsn++
				rec := wal.Record{LSN: lsn, Type: wal.TypeInsertRec, PageID: lsn % 512,
					TrxID: lsn, Payload: []byte("benchmark-row-payload")}
				enc = rec.Encode(enc)
			}
			if _, err := s.Append(enc); err != nil {
				s.Close()
				os.RemoveAll(dir)
				return nil, err
			}
		}
		s.Close()
		start := time.Now()
		s2, err := logstore.Open("bench", dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		elapsed := time.Since(start)
		segs := s2.Recovery().Segments
		got := s2.Len()
		s2.Close()
		os.RemoveAll(dir)
		if got != n {
			return nil, fmt.Errorf("bench: recovered %d of %d records", got, n)
		}
		rows = append(rows, RecoveryRow{
			Records: n, Segments: segs, Elapsed: elapsed,
			RecordsPerSec: float64(n) / elapsed.Seconds(),
		})
	}
	return rows, nil
}

// PrintRecovery renders the recovery-time table.
func PrintRecovery(w io.Writer, rows []RecoveryRow) {
	fmt.Fprintln(w, "Log Store recovery time vs log size (replay + CRC validation):")
	fmt.Fprintf(w, "  %10s %9s %12s %14s\n", "records", "segments", "elapsed", "records/s")
	for _, r := range rows {
		fmt.Fprintf(w, "  %10d %9d %12s %14.0f\n", r.Records, r.Segments, r.Elapsed.Round(time.Microsecond), r.RecordsPerSec)
	}
}
