// Package pstore implements the Page Store's persistent checkpoint
// store. The paper's Page Stores materialize pages by applying redo
// records ("the log is the database"), but a page image that only lives
// in memory forces a restarted node to replay the durable log from the
// beginning. A checkpoint bounds that work: each slice's page images and
// applied LSN are written to disk periodically, so recovery becomes
// "load the newest valid checkpoint, replay the log tail above it" —
// and, once every replica of every slice has checkpointed past an LSN,
// the Log Stores can garbage-collect the records below it.
//
// Two artifact kinds live in a checkpoint directory:
//
//   - Slice checkpoints (slice-<tenant>-<id>.ckpt): one file per slice,
//     holding the latest image of every page plus the slice's applied
//     LSN. Written by Page Store nodes.
//   - The meta checkpoint (meta.ckpt): the database frontend's data
//     dictionary (encoded catalog entries), each index's current B+ tree
//     root, the allocator high-water marks, and the cluster watermark
//     the checkpoint set covers. Written by the frontend, because
//     catalog records never reach Page Stores.
//
// Every file is a sequence of CRC32-C framed records (the same framing
// discipline as internal/plog) and is written atomically: the content
// goes to a temp file, is fsynced, and is renamed over the previous
// checkpoint, so a crash mid-write leaves the old checkpoint intact. A
// file that fails validation — short, torn, or corrupt anywhere — is
// ignored wholesale and recovery falls back to log replay for its slice.
package pstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

const (
	sliceMagic = 0x54434b31 // "TCK1": slice checkpoint header
	metaMagic  = 0x544d4b31 // "TMK1": meta checkpoint header

	ckptSuffix = ".ckpt"
	tmpSuffix  = ".tmp"
	metaName   = "meta" + ckptSuffix

	// frameHeader is u32 payload length + u32 CRC32-C over the payload.
	frameHeader = 4 + 4
	// maxFrameBytes bounds one frame (sanity check while loading; a
	// longer length field means a corrupt header).
	maxFrameBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Store.
type Options struct {
	// Dir is the checkpoint directory (created if missing).
	Dir string
	// NoSync skips the fsyncs (tests and benchmarks that only exercise
	// the file format); the rename is still atomic.
	NoSync bool
}

// Store is one node's checkpoint directory.
type Store struct {
	opts Options

	mu        sync.Mutex
	lastWrite time.Time
}

// Open creates or opens the checkpoint directory.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("pstore: Dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("pstore: %w", err)
	}
	s := &Store{opts: opts}
	// Recover the checkpoint age across restarts from file mtimes, and
	// clear any temp file a crash mid-write left behind.
	ents, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("pstore: %w", err)
	}
	for _, de := range ents {
		name := de.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			os.Remove(filepath.Join(opts.Dir, name))
			continue
		}
		if !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		if info, err := de.Info(); err == nil && info.ModTime().After(s.lastWrite) {
			s.lastWrite = info.ModTime()
		}
	}
	return s, nil
}

// Dir returns the checkpoint directory.
func (s *Store) Dir() string { return s.opts.Dir }

// LastCheckpoint returns when the newest checkpoint artifact was
// written (zero if the directory holds none).
func (s *Store) LastCheckpoint() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastWrite
}

// PageImage is one page of a slice checkpoint.
type PageImage struct {
	PageID uint64
	Data   []byte
}

// SliceCheckpoint is the durable image of one slice: the newest version
// of every page, all with LSN ≤ AppliedLSN.
type SliceCheckpoint struct {
	Tenant     uint32
	SliceID    uint32
	AppliedLSN uint64
	Pages      []PageImage
}

// Root records one B+ tree's current root page for the meta checkpoint.
type Root struct {
	IndexID uint64
	PageID  uint64
	Level   uint16
}

// Meta is the frontend's checkpoint: everything recovery needs that is
// not a page image.
type Meta struct {
	// AppliedLSN is the cluster watermark this checkpoint set covers:
	// every log record with LSN ≤ AppliedLSN is reflected in a durable
	// slice checkpoint, and the catalog below holds every DDL issued
	// before the meta was written. Recovery replays only records above
	// it; the Log Stores may truncate at or below it.
	AppliedLSN uint64
	// Allocator high-water marks at checkpoint time.
	MaxLSN     uint64
	MaxTrxID   uint64
	MaxPageID  uint64
	MaxIndexID uint64
	// Roots holds each index's current root page and its B+ tree level.
	Roots []Root
	// Catalog holds the encoded wal.CatalogEntry payloads in creation
	// order (tables before their secondary indexes).
	Catalog [][]byte
}

// appendFrame encodes one [len][crc][payload] frame.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// errCorrupt marks any validation failure; callers treat the whole file
// as absent.
var errCorrupt = fmt.Errorf("pstore: corrupt checkpoint")

// nextFrame parses one frame from b, returning the payload and bytes
// consumed.
func nextFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) < frameHeader {
		return nil, 0, errCorrupt
	}
	length := binary.LittleEndian.Uint32(b)
	if length > maxFrameBytes {
		return nil, 0, errCorrupt
	}
	sum := binary.LittleEndian.Uint32(b[4:])
	end := frameHeader + int(length)
	if len(b) < end {
		return nil, 0, errCorrupt
	}
	payload = b[frameHeader:end]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, errCorrupt
	}
	return payload, end, nil
}

// writeAtomic writes data to name via a temp file + rename, fsyncing
// the file and the directory unless NoSync is set.
func (s *Store) writeAtomic(name string, data []byte) error {
	final := filepath.Join(s.opts.Dir, name)
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("pstore: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("pstore: %w", err)
	}
	if !s.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("pstore: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("pstore: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("pstore: %w", err)
	}
	if !s.opts.NoSync {
		if d, err := os.Open(s.opts.Dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	s.mu.Lock()
	s.lastWrite = time.Now()
	s.mu.Unlock()
	return nil
}

func sliceName(tenant, sliceID uint32) string {
	return fmt.Sprintf("slice-%08x-%08x%s", tenant, sliceID, ckptSuffix)
}

// WriteSlice atomically replaces the slice's checkpoint file. Returns
// the bytes written.
func (s *Store) WriteSlice(ck *SliceCheckpoint) (int64, error) {
	hdr := binary.LittleEndian.AppendUint32(nil, sliceMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, ck.Tenant)
	hdr = binary.LittleEndian.AppendUint32(hdr, ck.SliceID)
	hdr = binary.LittleEndian.AppendUint64(hdr, ck.AppliedLSN)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(ck.Pages)))
	buf := appendFrame(nil, hdr)
	var pageBuf []byte
	for _, pg := range ck.Pages {
		pageBuf = binary.LittleEndian.AppendUint64(pageBuf[:0], pg.PageID)
		pageBuf = append(pageBuf, pg.Data...)
		buf = appendFrame(buf, pageBuf)
	}
	if err := s.writeAtomic(sliceName(ck.Tenant, ck.SliceID), buf); err != nil {
		return 0, err
	}
	return int64(len(buf)), nil
}

// parseSlice validates and decodes one slice checkpoint file.
func parseSlice(data []byte) (*SliceCheckpoint, error) {
	hdr, n, err := nextFrame(data)
	if err != nil {
		return nil, err
	}
	if len(hdr) != 4+4+4+8+4 || binary.LittleEndian.Uint32(hdr) != sliceMagic {
		return nil, errCorrupt
	}
	ck := &SliceCheckpoint{
		Tenant:     binary.LittleEndian.Uint32(hdr[4:]),
		SliceID:    binary.LittleEndian.Uint32(hdr[8:]),
		AppliedLSN: binary.LittleEndian.Uint64(hdr[12:]),
	}
	count := int(binary.LittleEndian.Uint32(hdr[20:]))
	data = data[n:]
	for i := 0; i < count; i++ {
		payload, n, err := nextFrame(data)
		if err != nil {
			return nil, err
		}
		if len(payload) < 8 {
			return nil, errCorrupt
		}
		ck.Pages = append(ck.Pages, PageImage{
			PageID: binary.LittleEndian.Uint64(payload),
			Data:   append([]byte(nil), payload[8:]...),
		})
		data = data[n:]
	}
	if len(data) != 0 {
		return nil, errCorrupt // trailing garbage: treat as damaged
	}
	return ck, nil
}

// LoadSlices reads every slice checkpoint in the directory. Files that
// fail validation are skipped and reported by name — the caller falls
// back to full log replay for those slices.
func (s *Store) LoadSlices() (valid []*SliceCheckpoint, corrupt []string, err error) {
	ents, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("pstore: %w", err)
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, "slice-") || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.opts.Dir, name))
		if err != nil {
			return nil, nil, fmt.Errorf("pstore: %w", err)
		}
		ck, perr := parseSlice(data)
		if perr != nil {
			corrupt = append(corrupt, name)
			continue
		}
		valid = append(valid, ck)
	}
	return valid, corrupt, nil
}

// WriteMeta atomically replaces the meta checkpoint.
func (s *Store) WriteMeta(m *Meta) error {
	p := binary.LittleEndian.AppendUint32(nil, metaMagic)
	p = binary.LittleEndian.AppendUint64(p, m.AppliedLSN)
	p = binary.LittleEndian.AppendUint64(p, m.MaxLSN)
	p = binary.LittleEndian.AppendUint64(p, m.MaxTrxID)
	p = binary.LittleEndian.AppendUint64(p, m.MaxPageID)
	p = binary.LittleEndian.AppendUint64(p, m.MaxIndexID)
	p = binary.AppendUvarint(p, uint64(len(m.Roots)))
	for _, r := range m.Roots {
		p = binary.LittleEndian.AppendUint64(p, r.IndexID)
		p = binary.LittleEndian.AppendUint64(p, r.PageID)
		p = binary.LittleEndian.AppendUint16(p, r.Level)
	}
	p = binary.AppendUvarint(p, uint64(len(m.Catalog)))
	for _, c := range m.Catalog {
		p = binary.AppendUvarint(p, uint64(len(c)))
		p = append(p, c...)
	}
	return s.writeAtomic(metaName, appendFrame(nil, p))
}

// LoadMeta reads the meta checkpoint. A missing or invalid file returns
// (nil, nil): recovery falls back to full log replay.
func (s *Store) LoadMeta() (*Meta, error) {
	data, err := os.ReadFile(filepath.Join(s.opts.Dir, metaName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("pstore: %w", err)
	}
	p, n, ferr := nextFrame(data)
	if ferr != nil || n != len(data) || len(p) < 4+5*8 || binary.LittleEndian.Uint32(p) != metaMagic {
		return nil, nil // damaged meta: recover by full replay
	}
	m := &Meta{
		AppliedLSN: binary.LittleEndian.Uint64(p[4:]),
		MaxLSN:     binary.LittleEndian.Uint64(p[12:]),
		MaxTrxID:   binary.LittleEndian.Uint64(p[20:]),
		MaxPageID:  binary.LittleEndian.Uint64(p[28:]),
		MaxIndexID: binary.LittleEndian.Uint64(p[36:]),
	}
	r := p[44:]
	nRoots, n := binary.Uvarint(r)
	if n <= 0 {
		return nil, nil
	}
	r = r[n:]
	for i := uint64(0); i < nRoots; i++ {
		if len(r) < 18 {
			return nil, nil
		}
		m.Roots = append(m.Roots, Root{
			IndexID: binary.LittleEndian.Uint64(r),
			PageID:  binary.LittleEndian.Uint64(r[8:]),
			Level:   binary.LittleEndian.Uint16(r[16:]),
		})
		r = r[18:]
	}
	nCat, n := binary.Uvarint(r)
	if n <= 0 {
		return nil, nil
	}
	r = r[n:]
	for i := uint64(0); i < nCat; i++ {
		l, n := binary.Uvarint(r)
		if n <= 0 || len(r) < n+int(l) {
			return nil, nil
		}
		m.Catalog = append(m.Catalog, append([]byte(nil), r[n:n+int(l)]...))
		r = r[n+int(l):]
	}
	if len(r) != 0 {
		return nil, nil
	}
	return m, nil
}
