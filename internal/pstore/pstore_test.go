package pstore

import (
	"os"
	"path/filepath"
	"testing"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(Options{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleSlice(tenant, sliceID uint32, lsn uint64, pages int) *SliceCheckpoint {
	ck := &SliceCheckpoint{Tenant: tenant, SliceID: sliceID, AppliedLSN: lsn}
	for i := 0; i < pages; i++ {
		data := make([]byte, 128+i)
		for j := range data {
			data[j] = byte(i + j)
		}
		ck.Pages = append(ck.Pages, PageImage{PageID: uint64(100 + i), Data: data})
	}
	return ck
}

func TestSliceRoundTrip(t *testing.T) {
	s := testStore(t)
	want := sampleSlice(1, 7, 42, 5)
	if _, err := s.WriteSlice(want); err != nil {
		t.Fatal(err)
	}
	got, corrupt, err := s.LoadSlices()
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 0 || len(got) != 1 {
		t.Fatalf("got %d valid, %d corrupt", len(got), len(corrupt))
	}
	ck := got[0]
	if ck.Tenant != 1 || ck.SliceID != 7 || ck.AppliedLSN != 42 || len(ck.Pages) != 5 {
		t.Fatalf("header = %+v", ck)
	}
	for i, pg := range ck.Pages {
		if pg.PageID != want.Pages[i].PageID || string(pg.Data) != string(want.Pages[i].Data) {
			t.Fatalf("page %d mismatch", i)
		}
	}
}

func TestWriteSliceReplacesPrevious(t *testing.T) {
	s := testStore(t)
	if _, err := s.WriteSlice(sampleSlice(1, 3, 10, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteSlice(sampleSlice(1, 3, 99, 4)); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.LoadSlices()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].AppliedLSN != 99 || len(got[0].Pages) != 4 {
		t.Fatalf("replacement not visible: %+v", got)
	}
}

// TestCorruptSliceSkipped flips a byte in the middle of a checkpoint
// file; the whole file must be reported corrupt and skipped while an
// intact sibling still loads.
func TestCorruptSliceSkipped(t *testing.T) {
	s := testStore(t)
	if _, err := s.WriteSlice(sampleSlice(1, 1, 10, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteSlice(sampleSlice(1, 2, 20, 3)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), sliceName(1, 1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, corrupt, err := s.LoadSlices()
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 1 || len(got) != 1 || got[0].SliceID != 2 {
		t.Fatalf("valid=%d corrupt=%v", len(got), corrupt)
	}
}

// TestTruncatedSliceSkipped cuts the file short — the torn-write shape
// an interrupted write would leave if the rename were not atomic.
func TestTruncatedSliceSkipped(t *testing.T) {
	s := testStore(t)
	if _, err := s.WriteSlice(sampleSlice(1, 5, 10, 3)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), sliceName(1, 5))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-9); err != nil {
		t.Fatal(err)
	}
	got, corrupt, err := s.LoadSlices()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || len(corrupt) != 1 {
		t.Fatalf("valid=%d corrupt=%v", len(got), corrupt)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	s := testStore(t)
	want := &Meta{
		AppliedLSN: 1000, MaxLSN: 1024, MaxTrxID: 55, MaxPageID: 900, MaxIndexID: 3,
		Roots:   []Root{{IndexID: 1, PageID: 17, Level: 2}, {IndexID: 2, PageID: 30, Level: 0}},
		Catalog: [][]byte{[]byte("table-entry"), []byte("index-entry")},
	}
	if err := s.WriteMeta(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadMeta()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("meta did not load")
	}
	if got.AppliedLSN != want.AppliedLSN || got.MaxLSN != want.MaxLSN ||
		got.MaxTrxID != want.MaxTrxID || got.MaxPageID != want.MaxPageID ||
		got.MaxIndexID != want.MaxIndexID {
		t.Fatalf("meta = %+v", got)
	}
	if len(got.Roots) != 2 || got.Roots[0] != want.Roots[0] || got.Roots[1] != want.Roots[1] {
		t.Fatalf("roots = %+v", got.Roots)
	}
	if len(got.Catalog) != 2 || string(got.Catalog[0]) != "table-entry" || string(got.Catalog[1]) != "index-entry" {
		t.Fatalf("catalog = %q", got.Catalog)
	}
}

func TestMissingMetaIsNil(t *testing.T) {
	s := testStore(t)
	m, err := s.LoadMeta()
	if err != nil || m != nil {
		t.Fatalf("missing meta: %v %v", m, err)
	}
}

func TestCorruptMetaIsNil(t *testing.T) {
	s := testStore(t)
	if err := s.WriteMeta(&Meta{AppliedLSN: 5}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), metaName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := s.LoadMeta()
	if err != nil || m != nil {
		t.Fatalf("corrupt meta must read as absent: %v %v", m, err)
	}
}

// TestCrashLeftoverTmpCleaned ensures a temp file from an interrupted
// write is removed on Open and never parsed as a checkpoint.
func TestCrashLeftoverTmpCleaned(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteSlice(sampleSlice(1, 1, 7, 1)); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, sliceName(1, 2)+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp file survived reopen: %v", err)
	}
	got, corrupt, err := s2.LoadSlices()
	if err != nil || len(got) != 1 || len(corrupt) != 0 {
		t.Fatalf("after reopen: %d valid %v corrupt %v", len(got), corrupt, err)
	}
	if s2.LastCheckpoint().IsZero() {
		t.Fatal("checkpoint age not recovered from mtime")
	}
}
