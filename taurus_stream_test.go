package taurus

import (
	"fmt"
	"testing"
	"time"
)

// TestReplicaStreamKillAndResubscribe: cutting a push replica off the
// transport drops it from the hub; once reachable again the watchdog
// resubscribes and the replica converges to the exact row count — no
// gaps (every record redelivered) and no duplicates (ingest dedupe).
func TestReplicaStreamKillAndResubscribe(t *testing.T) {
	master, err := Open(Config{PagesPerSlice: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	if _, err := master.Exec(`CREATE TABLE kv (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := master.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := OpenReplica(Config{Master: master, ReplicaRefreshInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if got := waitReplicaCount(t, rep, "SELECT COUNT(*) FROM kv", 100, 5*time.Second); got != 100 {
		t.Fatalf("pre-kill count = %d, want 100", got)
	}
	// Kill: the replica's node vanishes from the transport. The next
	// pushed frame fails and the hub drops the subscriber.
	master.tr.Unregister(rep.repName)
	for i := 100; i < 150; i++ {
		if _, err := master.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Reconnect: the watchdog notices the dead stream and resubscribes
	// from its contiguous tail.
	master.tr.Register(rep.repName, rep.rep)
	if got := waitReplicaCount(t, rep, "SELECT COUNT(*) FROM kv", 150, 10*time.Second); got != 150 {
		t.Fatalf("post-reconnect count = %d, want 150 exactly (gap or duplicate)", got)
	}
	if st := rep.ReplicaStats(); !st.Subscribed {
		t.Fatalf("replica did not resubscribe: %+v", st)
	}
}

// TestReplicaGCOverrunCheckpointResync: log GC overruns a detached push
// replica's tail; at resubscribe the store refuses the stale start and
// the replica rebases on the master's checkpoint instead of replaying a
// log range that no longer exists.
func TestReplicaGCOverrunCheckpointResync(t *testing.T) {
	master, err := Open(Config{DataDir: t.TempDir(), PagesPerSlice: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	if _, err := master.Exec(`CREATE TABLE ck (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := master.Exec(fmt.Sprintf("INSERT INTO ck VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := OpenReplica(Config{Master: master, ReplicaRefreshInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if got := waitReplicaCount(t, rep, "SELECT COUNT(*) FROM ck", 200, 5*time.Second); got != 200 {
		t.Fatalf("pre-detach count = %d, want 200", got)
	}
	detachTail := rep.ReplicaStats().TailedLSN
	master.tr.Unregister(rep.repName)
	// The master keeps writing; the failed pushes drop the subscriber,
	// unpinning GC.
	for i := 200; i < 600; i++ {
		if _, err := master.Exec(fmt.Sprintf("INSERT INTO ck VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint and truncate until GC actually passes the detached tail
	// (a resubscribe-in-flight ghost subscriber can clamp one sweep).
	overran := false
	for i := 0; i < 200 && !overran; i++ {
		if _, err := master.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if _, err := master.TruncateLogs(); err != nil {
			t.Fatal(err)
		}
		for _, ls := range master.LogStoreStats() {
			if ls.TruncatedLSN > detachTail {
				overran = true
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !overran {
		t.Fatalf("log GC never passed the detached tail %d", detachTail)
	}
	// Reconnect: the resubscribe is refused (tail truncated away) and
	// the replica rebases on the checkpoint.
	master.tr.Register(rep.repName, rep.rep)
	if got := waitReplicaCount(t, rep, "SELECT COUNT(*) FROM ck", 600, 10*time.Second); got != 600 {
		t.Fatalf("post-resync count = %d, want 600", got)
	}
	st := rep.ReplicaStats()
	if st.CkptResyncs == 0 {
		t.Fatalf("no checkpoint resync recorded: %+v", st)
	}
	if !st.Subscribed {
		t.Fatalf("replica not streaming after resync: %+v", st)
	}
}

// TestReplicaPullTailBackCompat: a pull-mode replica (mixed-version
// fleet: an old replica against upgraded stores) still tails by polling
// and registers for LSN-advance notifications.
func TestReplicaPullTailBackCompat(t *testing.T) {
	master, err := Open(Config{PagesPerSlice: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	if _, err := master.Exec(`CREATE TABLE kv (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := master.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := OpenReplica(Config{Master: master, ReplicaPullTail: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if got := waitReplicaCount(t, rep, "SELECT COUNT(*) FROM kv", 100, 5*time.Second); got != 100 {
		t.Fatalf("catch-up count = %d, want 100", got)
	}
	for i := 100; i < 150; i++ {
		if _, err := master.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := waitReplicaCount(t, rep, "SELECT COUNT(*) FROM kv", 150, 5*time.Second); got != 150 {
		t.Fatalf("post-write count = %d, want 150", got)
	}
	st := rep.ReplicaStats()
	if st.Subscribed || st.StreamBatches != 0 {
		t.Fatalf("pull replica used the push stream: %+v", st)
	}
	if st.Refreshes == 0 || st.Notifies == 0 {
		t.Fatalf("pull replica not polling/notified: %+v", st)
	}
	wp := master.WritePathStats()
	if wp.RegisteredReplicas != 1 || wp.FrontierWatchers != 0 {
		t.Fatalf("pull replica registration: replicas=%d watchers=%d", wp.RegisteredReplicas, wp.FrontierWatchers)
	}
}
