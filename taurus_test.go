package taurus

import (
	"strings"
	"testing"
)

func TestOpenAndQuickstart(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE worker (id BIGINT, age INT,
		join_date DATE, salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO worker VALUES ")
	for i := 0; i < 500; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("(")
		sb.WriteString(itoa(i))
		sb.WriteString(", ")
		sb.WriteString(itoa(20 + i%40))
		sb.WriteString(", DATE '2010-06-01', 4000.00, 'w')")
	}
	if _, err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM worker WHERE age < 30")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 130 {
		t.Fatalf("count = %v", res.Rows)
	}
	// Toggle NDP; results identical.
	db.SetNDP(false)
	if db.NDPEnabled() {
		t.Fatal("toggle failed")
	}
	res2, err := db.Exec("SELECT COUNT(*) FROM worker WHERE age < 30")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows[0][0].I != res.Rows[0][0].I {
		t.Fatal("NDP on/off disagree")
	}
	// Stats surfaces.
	if db.NetworkStats().Requests == 0 {
		t.Error("network stats empty")
	}
	if len(db.PageStoreStats()) != 4 {
		t.Error("expected 4 page stores")
	}
	_ = db.EngineStats()
	db.SetNDPPageThreshold(1)
	db.SetNDP(true)
	// EXPLAIN works through the public API.
	exp, err := db.Exec("EXPLAIN SELECT COUNT(*) FROM worker WHERE age < 30")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.Explain, "Index scan on worker") {
		t.Errorf("explain = %s", exp.Explain)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestOpenDefaults(t *testing.T) {
	db, err := Open(Config{PageStores: 2, ReplicationFactor: 2, DisableNDP: true})
	if err != nil {
		t.Fatal(err)
	}
	if db.NDPEnabled() {
		t.Fatal("DisableNDP ignored")
	}
	if len(db.PageStoreStats()) != 2 {
		t.Fatal("store count")
	}
	if db.Engine() == nil {
		t.Fatal("engine accessor")
	}
}
