// taurus-doctor polls a Taurus fleet's health endpoints and renders a
// per-node check table, so "is the cluster healthy" is one command. It
// is single-shot by design: run it from cron, CI, or a shell while
// debugging, and gate on the exit code.
//
// Usage:
//
//	taurus-doctor [-cluster host:port] [-timeout 2s] [stats-addr ...]
//
// Each positional argument is one node's stats address; the doctor
// fetches GET /health from it and prints every check. -cluster names a
// frontend and fetches GET /cluster/health as well: the frontend's own
// report plus its failure detector's Alive/Suspect/Dead verdict for
// every storage node and replica it heartbeats.
//
// Exit status is 0 only when every node answered, every check is OK,
// and every peer the frontend tracks is Alive. Anything else — an
// unreachable node, a warn or critical check, a Suspect or Dead peer —
// exits 1, so scripts need no JSON parsing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"taurus/internal/health"
)

func main() {
	cluster := flag.String("cluster", "", "frontend stats address to fetch GET /cluster/health from")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request HTTP timeout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: taurus-doctor [-cluster host:port] [-timeout d] [stats-addr ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *cluster == "" && flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}

	healthy := true
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tROLE\tCHECK\tSTATUS\tDETAIL\tRUNBOOK")
	for _, addr := range flag.Args() {
		rep, err := fetchReport(client, addr)
		if err != nil {
			// An unreachable node is a finding, not a tool error: render
			// it as a critical check so the table stays uniform.
			healthy = false
			printCheck(tw, addr, "?", health.Check{
				Name: "node.unreachable", Status: health.StatusCritical,
				Detail: err.Error(), Runbook: "RB-NODE-UNREACHABLE",
			})
			continue
		}
		if !printReport(tw, rep) {
			healthy = false
		}
	}

	var view *health.ClusterView
	if *cluster != "" {
		v, err := fetchCluster(client, *cluster)
		if err != nil {
			healthy = false
			printCheck(tw, *cluster, "frontend", health.Check{
				Name: "cluster.unreachable", Status: health.StatusCritical,
				Detail: err.Error(), Runbook: "RB-NODE-UNREACHABLE",
			})
		} else {
			view = v
			if !printReport(tw, v.Self) {
				healthy = false
			}
			// Peers that shipped a full report get their checks in the
			// main table too, attributed to the peer's node name.
			for _, p := range v.Peers {
				if p.Report != nil && !printReport(tw, *p.Report) {
					healthy = false
				}
			}
		}
	}
	tw.Flush()

	if view != nil && len(view.Peers) > 0 {
		fmt.Println()
		pw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(pw, "PEER\tROLE\tSTATE\tPHI\tSILENCE\tPING-STATUS")
		for _, p := range view.Peers {
			if p.State != health.PeerAlive || p.PingStatus != health.StatusOK {
				healthy = false
			}
			fmt.Fprintf(pw, "%s\t%s\t%s\t%.1f\t%.1fs\t%s\n",
				p.Name, p.Role, p.State, p.Phi, p.SilenceSeconds, p.PingStatus)
		}
		pw.Flush()
	}

	if !healthy {
		fmt.Println("\nRESULT: UNHEALTHY")
		os.Exit(1)
	}
	fmt.Println("\nRESULT: OK")
}

func fetchReport(client *http.Client, addr string) (health.Report, error) {
	var rep health.Report
	err := fetchJSON(client, addr, "/health", &rep)
	return rep, err
}

func fetchCluster(client *http.Client, addr string) (*health.ClusterView, error) {
	var v health.ClusterView
	// /cluster/health answers 503 when the fold is critical; the body
	// still carries the view, which is exactly what we want to render.
	if err := fetchJSON(client, addr, "/cluster/health", &v); err != nil {
		return nil, err
	}
	return &v, nil
}

func fetchJSON(client *http.Client, addr, path string, out any) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	resp, err := client.Get(addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// printReport renders one node's checks and reports whether all are OK.
// A node with zero checks still prints one row, so silent nodes are
// visible in the table.
func printReport(tw *tabwriter.Writer, rep health.Report) bool {
	ok := true
	if len(rep.Checks) == 0 {
		st := health.StatusOK
		detail := "no checks registered"
		if !rep.Ready {
			st, detail, ok = health.StatusWarn, "not ready", false
		}
		printCheck(tw, rep.Node, rep.Role, health.Check{Name: "-", Status: st, Detail: detail})
		return ok
	}
	for _, c := range rep.Checks {
		if c.Status != health.StatusOK {
			ok = false
		}
		printCheck(tw, rep.Node, rep.Role, c)
	}
	return ok
}

func printCheck(tw *tabwriter.Writer, node, role string, c health.Check) {
	detail := c.Detail
	if len(detail) > 72 {
		detail = detail[:69] + "..."
	}
	fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
		node, role, c.Name, strings.ToUpper(c.Status.String()), detail, c.Runbook)
}
