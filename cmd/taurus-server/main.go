// taurus-server runs a standalone Page Store (or Log Store) behind the
// TCP transport, so a storage layer can be deployed as separate
// processes. A frontend connects by configuring the SAL with the
// servers' addresses and cluster.NewTCPClient as the transport.
//
// Usage:
//
//	taurus-server -listen :7000 -role pagestore
//	taurus-server -listen :7100 -role logstore
package main

import (
	"flag"
	"log"
	"net"

	"taurus/internal/cluster"
	"taurus/internal/logstore"
	"taurus/internal/pagestore"
)

func main() {
	listen := flag.String("listen", ":7000", "address to listen on")
	role := flag.String("role", "pagestore", "pagestore or logstore")
	name := flag.String("name", "", "node name (defaults to the listen address)")
	ndpWorkers := flag.Int("ndp-workers", 4, "NDP worker threads (pagestore)")
	ndpQueue := flag.Int("ndp-queue", 1024, "NDP admission queue depth (pagestore)")
	flag.Parse()

	if *name == "" {
		*name = *listen
	}
	var handler cluster.Handler
	switch *role {
	case "pagestore":
		rc := pagestore.NewResourceControl(*ndpWorkers, *ndpQueue)
		handler = pagestore.New(*name, pagestore.WithResourceControl(rc))
	case "logstore":
		handler = logstore.New(*name)
	default:
		log.Fatalf("unknown role %q", *role)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s %q listening on %s", *role, *name, l.Addr())
	if err := cluster.Serve(l, handler); err != nil {
		log.Fatal(err)
	}
}
