// taurus-server runs a standalone Page Store (or Log Store) behind the
// TCP transport, so a storage layer can be deployed as separate
// processes. A frontend connects by configuring the SAL with the
// servers' addresses and cluster.NewTCPClient as the transport.
//
// Usage:
//
//	taurus-server -listen :7000 -role pagestore -data-dir /var/lib/taurus/ps1
//	taurus-server -listen :7100 -role logstore -data-dir /var/lib/taurus/log1
//
// A logstore with -data-dir persists acknowledged batches to a
// segmented on-disk log and recovers them (tolerating a torn tail) on
// restart. A pagestore with -data-dir checkpoints its slices there on
// -checkpoint-interval and restores them on restart, reporting its
// persisted LSN so the frontend's SAL can drive log GC. Without
// -data-dir either node is memory-only.
//
// -stats-addr serves the observability endpoints of every role:
//
//	GET /stats         role-specific counters as JSON (backward-compatible)
//	GET /metrics       the same telemetry in Prometheus text format
//	GET /healthz       liveness (always 200 while the process serves)
//	GET /ready         readiness (503 until recovered and no check critical)
//	GET /health        the node's full health-check report
//	GET /debug/pprof/  net/http/pprof profiles
//
// The frontend additionally serves GET /cluster/health: its own report
// plus the failure detector's view of every storage node and replica.
// With -peers role=addr,... it also heartbeats external cluster
// processes over TCP and folds their Alive/Suspect/Dead states into the
// same view (tune with -heartbeat-interval and -suspect-threshold).
//
// Log Stores report durable and GC watermarks plus the persistent log's
// counters (appends, fsyncs, rotations, GC bytes reclaimed); Page Stores
// report applied/persisted LSNs, apply/skip counters, and checkpoint
// age. Both also export per-message-type RPC metrics from the serving
// loop (side="server"). -slow-op arms the frontend/replica slow-op log:
// statements at or above the threshold log a per-stage breakdown.
//
// A third role, frontend, runs an embedded full deployment and serves
// SQL over HTTP (POST /query) plus the frontend-side stats — the SAL's
// slice-partitioned write pipeline (per-lane windows sealed and seal
// reasons, adaptive flush thresholds, hot-slice promotions/demotions,
// apply lag per slice, backpressure stalls, commit/apply waits,
// registered read replicas) and per-shard buffer pool counters
// (including StaleRefetches). -write-lanes sizes the dedicated-lane
// pool; -replicas attaches embedded read replicas, each serving
// read-only SQL at /replica/<n>/query and its tailing stats (visible
// LSN, lag records/bytes, refreshes) at /replica/<n>/stats:
//
//	taurus-server -role frontend -listen :7200 -stats-addr :7201 -data-dir /var/lib/taurus/fe -write-lanes 2 -replicas 2
//
// A fourth role, replica, is the distributed form of the same read
// tier: it attaches to storage servers over TCP (-log-stores and
// -page-stores take comma-separated host:port lists that must match the
// master's ordering) and serves read-only SQL on POST /query with its
// lag stats on GET /stats. With -advertise the replica listens on that
// address for the cluster protocol and subscribes to the Log Stores'
// push streams (batches arrive as they commit; -refresh-interval only
// paces the liveness watchdog); without it the replica polls:
//
//	taurus-server -role replica -listen :7300 -advertise :7310 \
//	  -log-stores :7100,:7101,:7102 -page-stores :7000,:7001,:7002,:7003 \
//	  -pages-per-slice 655360 -refresh-interval 25ms
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"taurus"
	"taurus/internal/buffer"
	"taurus/internal/cluster"
	"taurus/internal/engine"
	"taurus/internal/health"
	"taurus/internal/logstore"
	"taurus/internal/obs"
	"taurus/internal/pagestore"
	"taurus/internal/pstore"
	"taurus/internal/replica"
	"taurus/internal/sal"
	"taurus/internal/sql"
)

func main() {
	listen := flag.String("listen", ":7000", "address to listen on")
	role := flag.String("role", "pagestore", "pagestore, logstore, or frontend")
	name := flag.String("name", "", "node name (defaults to the listen address)")
	ndpWorkers := flag.Int("ndp-workers", 4, "NDP worker threads (pagestore)")
	ndpQueue := flag.Int("ndp-queue", 1024, "NDP admission queue depth (pagestore)")
	dataDir := flag.String("data-dir", "", "durable directory: segmented log (logstore) or slice checkpoints (pagestore); empty = in-memory")
	flushInterval := flag.Duration("flush-interval", 0, "group-commit window (logstore; 0 = default 2ms)")
	segmentBytes := flag.Int64("segment-bytes", 0, "log segment rotation size (logstore; 0 = default 16MB)")
	ckptInterval := flag.Duration("checkpoint-interval", time.Minute, "slice checkpoint cadence (pagestore with -data-dir)")
	statsAddr := flag.String("stats-addr", "", "HTTP address for GET /stats (empty = disabled)")
	writeLanes := flag.Int("write-lanes", 0, "dedicated per-slice write lanes (frontend; 0 = default, negative disables promotion)")
	replicas := flag.Int("replicas", 0, "embedded read replicas served at /replica/<n>/query (frontend)")
	logStores := flag.String("log-stores", "", "comma-separated Log Store addresses (replica)")
	pageStores := flag.String("page-stores", "", "comma-separated Page Store addresses, master order (replica)")
	tenant := flag.Uint("tenant", 1, "tenant id on the storage services (replica)")
	pagesPerSlice := flag.Uint64("pages-per-slice", 0, "slice size in pages, must match the master (replica; 0 = default)")
	replication := flag.Int("replication-factor", 3, "slice replication factor, must match the master (replica)")
	refreshInterval := flag.Duration("refresh-interval", 0, "log tail poll cadence (replica; 0 = default 25ms)")
	poolPages := flag.Int("pool-pages", 0, "buffer pool pages (replica; 0 = default)")
	advertise := flag.String("advertise", "", "cluster address this replica listens on for pushed log batches; Log Stores must be able to dial it (replica; empty = pull tailing)")
	slowOp := flag.Duration("slow-op", 0, "log statements at or above this duration with a per-stage breakdown (frontend/replica; 0 = off)")
	traceSample := flag.Float64("trace-sample", 0, "probability a statement opens a distributed trace (frontend/replica; 0 = off, forced traces still work)")
	scanPar := flag.Int("scan-parallelism", 0, "concurrent slice partitions per NDP scan (frontend/replica; 0 = GOMAXPROCS)")
	peers := flag.String("peers", "", "comma-separated role=addr cluster peers the frontend heartbeats over TCP and folds into GET /cluster/health (frontend)")
	heartbeatInterval := flag.Duration("heartbeat-interval", 0, "failure-detector ping cadence (frontend; 0 = default 1s, negative disables)")
	suspectThreshold := flag.Duration("suspect-threshold", 0, "silence after which a peer is Suspect; Dead at twice this (frontend; 0 = default 5s)")
	flag.Parse()

	if *name == "" {
		*name = *listen
	}
	var handler cluster.Handler
	var stats func() any
	var mon *health.Monitor
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg)
	// Every role collects server-side spans for propagated trace contexts
	// and keeps a flight recorder, served at /trace/<id>, /traces, and
	// /events on -stats-addr. Sampling is decided at the frontend root;
	// storage servers record whenever the arriving frame is sampled.
	tracer := obs.NewTracer(*name, *traceSample, 0)
	events := obs.NewEventRing(0)
	switch *role {
	case "pagestore":
		opts := []pagestore.Option{
			pagestore.WithResourceControl(pagestore.NewResourceControl(*ndpWorkers, *ndpQueue)),
			pagestore.WithMetrics(reg),
			pagestore.WithTracer(tracer), pagestore.WithEvents(events),
		}
		if *dataDir != "" {
			cs, err := pstore.Open(pstore.Options{Dir: *dataDir})
			if err != nil {
				log.Fatal(err)
			}
			opts = append(opts, pagestore.WithCheckpoints(cs))
		}
		ps := pagestore.New(*name, opts...)
		if *dataDir != "" {
			rst, err := ps.Restore()
			if err != nil {
				log.Fatal(err)
			}
			if rst.Slices > 0 || rst.Corrupt > 0 {
				log.Printf("pagestore %q restored %d slices (%d pages) from checkpoints, %d corrupt files skipped (min applied LSN %d)",
					*name, rst.Slices, rst.Pages, rst.Corrupt, rst.MinAppliedLSN)
			}
			if *ckptInterval > 0 {
				go func() {
					for range time.Tick(*ckptInterval) {
						st, err := ps.Checkpoint()
						if err != nil {
							log.Printf("pagestore %q checkpoint: %v", *name, err)
							continue
						}
						if st.SlicesWritten > 0 {
							log.Printf("pagestore %q checkpointed %d slices (%d pages, %d bytes), persisted LSN %d",
								*name, st.SlicesWritten, st.Pages, st.Bytes, st.PersistedLSN)
						}
					}
				}()
			}
		}
		mon = health.NewMonitor(*name, "pagestore",
			health.MonitorOptions{Events: events, Metrics: reg})
		ps.RegisterHealth(mon, *ckptInterval)
		ps.SetHealth(mon)
		mon.StartLoop(time.Second)
		handler = ps
		stats = func() any { return ps.NodeStats() }
	case "logstore":
		var ls *logstore.Store
		if *dataDir == "" {
			ls = logstore.New(*name)
		} else {
			var opts []logstore.Option
			if *flushInterval > 0 {
				opts = append(opts, logstore.WithFlushInterval(*flushInterval))
			}
			if *segmentBytes > 0 {
				opts = append(opts, logstore.WithSegmentBytes(*segmentBytes))
			}
			var err error
			ls, err = logstore.Open(*name, *dataDir, opts...)
			if err != nil {
				log.Fatal(err)
			}
			if ri := ls.Recovery(); ri.Entries > 0 || ri.TornEntry {
				log.Printf("logstore %q recovered %d entries from %d segments (torn tail: %v, durable LSN %d)",
					*name, ri.Entries, ri.Segments, ri.TornEntry, ls.DurableLSN())
			}
		}
		ls.RegisterMetrics(reg)
		ls.SetTracer(tracer)
		ls.SetEvents(events)
		// Arm the push hub: subscribers (replicas started with
		// -advertise) register a dialable address as their node name,
		// and the store pushes log batches to it over this client.
		pc := cluster.NewTCPClient()
		pc.Metrics = cluster.NewRPCMetrics(reg, "client")
		pc.Tracer = tracer
		ls.SetPushTransport(pc)
		mon = health.NewMonitor(*name, "logstore",
			health.MonitorOptions{Events: events, Metrics: reg})
		ls.RegisterHealth(mon)
		ls.SetHealth(mon)
		mon.StartLoop(time.Second)
		handler = ls
		stats = func() any { return ls.NodeStats() }
	case "frontend":
		runFrontend(*listen, *statsAddr, frontendOptions{
			dataDir: *dataDir, ckptInterval: *ckptInterval,
			writeLanes: *writeLanes, replicas: *replicas,
			slowOp: *slowOp, traceSample: *traceSample, scanPar: *scanPar,
			peers: parsePeers(*peers), heartbeat: *heartbeatInterval, suspect: *suspectThreshold,
		})
		return
	case "replica":
		runReplica(*listen, *statsAddr, replicaOptions{
			name:      *name,
			logStores: splitAddrs(*logStores), pageStores: splitAddrs(*pageStores),
			tenant: uint32(*tenant), pagesPerSlice: *pagesPerSlice,
			replicationFactor: *replication, refreshInterval: *refreshInterval,
			poolPages: *poolPages, slowOp: *slowOp, traceSample: *traceSample, scanPar: *scanPar,
			advertise: *advertise,
		})
		return
	default:
		log.Fatalf("unknown role %q", *role)
	}
	if *statsAddr != "" {
		serveStats(*statsAddr, newStatsMux(jsonHandler(stats), reg, tracer.Spans, tracer.RecentTraces, events, mon))
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s %q listening on %s", *role, *name, l.Addr())
	if err := cluster.ServeMetrics(l, handler, cluster.NewRPCMetrics(reg, "server")); err != nil {
		log.Fatal(err)
	}
}

// newStatsMux builds the observability mux every role serves on its
// -stats-addr: role-specific JSON /stats, Prometheus /metrics, the trace
// endpoints (GET /trace/<hex-id>, GET /traces?recent=N), the flight
// recorder (GET /events, cursored with ?since=<seq>), the health
// endpoints (GET /healthz liveness, GET /ready readiness, GET /health
// full check report), and the net/http/pprof profile endpoints
// (registered explicitly — these muxes are not http.DefaultServeMux).
func newStatsMux(stats http.HandlerFunc, reg *obs.Registry, spans func(uint64) []obs.Span, recent func(int) []uint64, events *obs.EventRing, mon *health.Monitor) *http.ServeMux {
	mux := http.NewServeMux()
	if stats != nil {
		mux.HandleFunc("/stats", stats)
	}
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	if mon != nil {
		mux.Handle("/healthz", mon.HealthzHandler())
		mux.Handle("/ready", mon.ReadyHandler())
		mux.Handle("/health", mon.ReportHandler())
	}
	if spans != nil {
		mux.Handle("/trace/", obs.TraceHandler(spans))
	}
	if recent != nil {
		mux.Handle("/traces", obs.TracesHandler(recent))
	}
	if events != nil {
		mux.Handle("/events", events.Handler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveStats serves an observability mux on its own listener.
func serveStats(addr string, mux *http.ServeMux) {
	go func() {
		log.Printf("stats on http://%s/stats (also /metrics, /debug/pprof/)", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("stats endpoint: %v", err)
		}
	}()
}

// splitAddrs parses a comma-separated address list.
func splitAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// clusterPeer is one -peers entry: a dialable cluster address plus the
// role label shown in /cluster/health and taurus_peer_state.
type clusterPeer struct {
	role string
	addr string
}

// parsePeers parses -peers: comma-separated entries, each "role=addr"
// or a bare "addr" (role defaults to "peer"). The address doubles as
// the peer's name — it is what the pinger dials.
func parsePeers(s string) []clusterPeer {
	var out []clusterPeer
	for _, part := range splitAddrs(s) {
		role, addr, ok := strings.Cut(part, "=")
		if !ok {
			out = append(out, clusterPeer{role: "peer", addr: part})
			continue
		}
		out = append(out, clusterPeer{role: strings.TrimSpace(role), addr: strings.TrimSpace(addr)})
	}
	return out
}

// frontendStats is the /stats payload of a frontend node: the SAL's
// group-commit pipeline counters (including registered read replicas
// and LSN-advance notifications), per-shard buffer pool counters
// (including StaleRefetches), and the embedded storage nodes' states.
type frontendStats struct {
	WritePath  sal.PipelineStats
	BufferPool []buffer.ShardStats
	LogStores  []logstore.NodeStats
	PageStores []pagestore.StatsSnapshot
	// PageStoreNodes carries each Page Store's node view — applied/
	// persisted LSNs, NDP queue depth, descriptor-cache hit/miss — so
	// scan routing imbalance is visible from one endpoint.
	PageStoreNodes []pagestore.NodeStats
	// ScanRouting snapshots the NDP scan read router: per-replica
	// in-flight, EWMA latency, and routed/retried/hedged counters.
	ScanRouting sal.RouterStats
	// SlowOpsFired counts statements the slow-op log fired on (also
	// exported as taurus_slow_ops_fired_total).
	SlowOpsFired uint64
}

// replicaStats is the /stats payload of a read replica (embedded or
// standalone): the tailing state (visible LSN, lag records/bytes,
// refresh and notification counts, pages invalidated) plus its own
// buffer pool counters.
type replicaStats struct {
	Replica    replica.Stats
	BufferPool []buffer.ShardStats
	// ScanRouting snapshots the replica's NDP scan read router.
	ScanRouting  sal.RouterStats
	SlowOpsFired uint64
}

// queryHandler serves one frontend's POST /query. With a non-nil
// execTraced, a request carrying an X-Taurus-Trace header (any value)
// forces a distributed trace and the response echoes the hex trace ID in
// the same header — fetch the assembled tree from GET /trace/<id>.
func queryHandler(exec func(string) (*taurus.Result, error),
	execTraced func(string) (*taurus.Result, uint64, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a SQL statement", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var res *taurus.Result
		if execTraced != nil && r.Header.Get("X-Taurus-Trace") != "" {
			var id uint64
			res, id, err = execTraced(string(body))
			if id != 0 {
				w.Header().Set("X-Taurus-Trace", fmt.Sprintf("%x", id))
			}
		} else {
			res, err = exec(string(body))
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(res); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

func jsonHandler(payload func() any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

// frontendOptions configures runFrontend beyond its listen addresses.
type frontendOptions struct {
	dataDir      string
	ckptInterval time.Duration
	writeLanes   int
	replicas     int
	slowOp       time.Duration
	traceSample  float64
	scanPar      int
	// peers are external cluster nodes (standalone storage servers,
	// distributed replicas) the frontend heartbeats over TCP; their
	// Alive/Suspect/Dead states are folded into GET /cluster/health
	// next to the embedded deployment's own failure detector.
	peers     []clusterPeer
	heartbeat time.Duration
	suspect   time.Duration
}

// runFrontend serves an embedded Taurus deployment over HTTP: POST
// /query executes one SQL statement (text/plain body, JSON result), and
// GET /stats on -stats-addr (or, if empty, the main listener) reports
// the write-pipeline / buffer-pool / storage-node counters. With
// -replicas n, n embedded read replicas attach to the same storage
// cluster and serve /replica/<i>/query and /replica/<i>/stats.
func runFrontend(listen, statsAddr string, opts frontendOptions) {
	cfg := taurus.Config{DataDir: opts.dataDir, WriteLanes: opts.writeLanes, SlowOpThreshold: opts.slowOp,
		TraceSampleRate: opts.traceSample, ScanParallelism: opts.scanPar,
		HeartbeatInterval: opts.heartbeat, SuspectThreshold: opts.suspect}
	if opts.dataDir != "" && opts.ckptInterval > 0 {
		cfg.CheckpointInterval = opts.ckptInterval
	}
	db, err := taurus.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	view := db.ClusterHealth
	if len(opts.peers) > 0 && opts.heartbeat >= 0 {
		// External peers get their own detector and TCP pinger; the
		// embedded fleet keeps its in-process one. Both report into the
		// same registry/event ring and are folded into one cluster view.
		// A negative -heartbeat-interval disables heartbeating here just
		// as it does for the embedded fleet.
		ext := health.NewDetector(opts.heartbeat, opts.suspect, db.EventRing(), db.Metrics())
		for _, p := range opts.peers {
			ext.Track(p.addr, p.role)
		}
		hc := cluster.NewTCPClient()
		hc.Metrics = cluster.NewRPCMetrics(db.Metrics(), "client")
		// Bound every health RPC: a peer that black-holes traffic must
		// turn into a failed ping (and growing silence), not a forever-
		// blocked call holding a pinger goroutine.
		hc.DialTimeout = ext.SuspectThreshold()
		hc.CallTimeout = ext.SuspectThreshold()
		go cluster.RunHealthPinger(hc, ext, "frontend", make(chan struct{}), cluster.PingerOptions{})
		view = func() health.ClusterView {
			v := db.ClusterHealth()
			v.Peers = append(v.Peers, ext.Snapshot()...)
			return v
		}
	}
	mux, err := frontendMux(db, opts.replicas, opts.slowOp, opts.scanPar, view)
	if err != nil {
		log.Fatal(err)
	}
	if statsAddr != "" && statsAddr != listen {
		sm := newStatsMux(frontendStatsHandler(db), db.Metrics(),
			db.TraceSpans, db.RecentTraces, db.EventRing(), db.Health())
		sm.Handle("/cluster/health", health.ClusterHandler(view))
		serveStats(statsAddr, sm)
	}
	log.Printf("frontend listening on %s (POST /query, GET /stats, GET /metrics, GET /trace/<id>, GET /events, GET /cluster/health)", listen)
	if err := http.ListenAndServe(listen, mux); err != nil {
		log.Fatal(err)
	}
}

// frontendStatsHandler renders the frontend's JSON /stats payload.
func frontendStatsHandler(db *taurus.DB) http.HandlerFunc {
	return jsonHandler(func() any {
		return frontendStats{
			WritePath:      db.WritePathStats(),
			BufferPool:     db.BufferPoolStats(),
			LogStores:      db.LogStoreStats(),
			PageStores:     db.PageStoreStats(),
			PageStoreNodes: db.PageStoreNodes(),
			ScanRouting:    db.ScanRouting(),
			SlowOpsFired:   db.SlowOpsFired(),
		}
	})
}

// frontendMux assembles the frontend's full HTTP surface — /query,
// /stats, /metrics, /debug/pprof/, the health endpoints (/healthz,
// /ready, /health, /cluster/health), and per-replica /replica/<i>/
// {query,stats,metrics,health} — factored out of runFrontend so tests
// can drive it in-process. Each replica serves its own metrics
// registry; the embedded storage nodes' series live in the master's.
// view supplies /cluster/health (nil = the embedded fleet only).
func frontendMux(db *taurus.DB, replicas int, slowOp time.Duration, scanPar int, view func() health.ClusterView) (*http.ServeMux, error) {
	mux := newStatsMux(frontendStatsHandler(db), db.Metrics(),
		db.TraceSpans, db.RecentTraces, db.EventRing(), db.Health())
	if view == nil {
		view = db.ClusterHealth
	}
	mux.Handle("/cluster/health", health.ClusterHandler(view))
	mux.HandleFunc("/query", queryHandler(db.Exec, db.ExecTraced))
	for i := 1; i <= replicas; i++ {
		rep, err := taurus.OpenReplica(taurus.Config{Master: db, SlowOpThreshold: slowOp,
			TraceSampleRate: db.Tracer().Rate(), ScanParallelism: scanPar})
		if err != nil {
			return nil, fmt.Errorf("replica %d: %w", i, err)
		}
		mux.HandleFunc(fmt.Sprintf("/replica/%d/query", i), queryHandler(rep.Exec, rep.ExecTraced))
		mux.HandleFunc(fmt.Sprintf("/replica/%d/stats", i), jsonHandler(func() any {
			return replicaStats{Replica: rep.ReplicaStats(), BufferPool: rep.BufferPoolStats(),
				ScanRouting: rep.ScanRouting(), SlowOpsFired: rep.SlowOpsFired()}
		}))
		mux.Handle(fmt.Sprintf("/replica/%d/metrics", i), rep.Metrics().Handler())
		mux.Handle(fmt.Sprintf("/replica/%d/trace/", i), obs.TraceHandler(rep.TraceSpans))
		mux.Handle(fmt.Sprintf("/replica/%d/traces", i), obs.TracesHandler(rep.RecentTraces))
		mux.Handle(fmt.Sprintf("/replica/%d/events", i), rep.EventRing().Handler())
		mux.Handle(fmt.Sprintf("/replica/%d/healthz", i), rep.Health().HealthzHandler())
		mux.Handle(fmt.Sprintf("/replica/%d/ready", i), rep.Health().ReadyHandler())
		mux.Handle(fmt.Sprintf("/replica/%d/health", i), rep.Health().ReportHandler())
		log.Printf("read replica %d on /replica/%d/query", i, i)
	}
	return mux, nil
}

// replicaOptions configures a standalone TCP-attached read replica.
type replicaOptions struct {
	name              string
	logStores         []string
	pageStores        []string
	tenant            uint32
	pagesPerSlice     uint64
	replicationFactor int
	refreshInterval   time.Duration
	poolPages         int
	slowOp            time.Duration
	traceSample       float64
	advertise         string
	scanPar           int
}

// runReplica serves a standalone read replica attached to storage
// servers over TCP. With -advertise it listens on that address for the
// cluster protocol, subscribes to the Log Stores' push streams, and
// receives log batches as they commit; without it the replica polls on
// -refresh-interval. The catalog bootstraps from the full log tail, so
// the Log Stores must still retain the DDL records (i.e. log GC must
// not have truncated them).
func runReplica(listen, statsAddr string, opts replicaOptions) {
	if len(opts.logStores) == 0 || len(opts.pageStores) == 0 {
		log.Fatal("replica: -log-stores and -page-stores required")
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(opts.name, opts.traceSample, 0)
	events := obs.NewEventRing(0)
	tc := cluster.NewTCPClient()
	tc.Metrics = cluster.NewRPCMetrics(reg, "client")
	tc.Tracer = tracer
	rep, err := replica.New(replica.Config{
		Transport: tc, Tenant: opts.tenant,
		LogStores: opts.logStores, PageStores: opts.pageStores,
		ReplicationFactor: opts.replicationFactor,
		PagesPerSlice:     opts.pagesPerSlice,
		Plugin:            pagestore.PluginInnoDB,
		RefreshInterval:   opts.refreshInterval,
		Metrics:           reg,
		Name:              opts.name,
		Tracer:            tracer,
		Events:            events,
		Subscribe:         opts.advertise != "",
		Node:              opts.advertise,
	})
	if err != nil {
		log.Fatal(err)
	}
	obs.RegisterBuildInfo(reg)
	mon := health.NewMonitor(opts.name, "replica",
		health.MonitorOptions{Events: events, Metrics: reg})
	rep.RegisterHealth(mon)
	rep.SetHealth(mon)
	if opts.advertise != "" {
		cl, err := net.Listen("tcp", opts.advertise)
		if err != nil {
			log.Fatalf("replica: cluster listener on %s: %v", opts.advertise, err)
		}
		go func() {
			if err := cluster.ServeMetrics(cl, rep, cluster.NewRPCMetrics(reg, "server")); err != nil {
				log.Printf("replica: cluster listener: %v", err)
			}
		}()
		log.Printf("replica accepting pushed log batches on %s", opts.advertise)
	}
	eng, err := engine.New(engine.Config{ReadView: rep, PoolPages: opts.poolPages,
		ScanParallelism: opts.scanPar, Tracer: tracer, Events: events})
	if err != nil {
		log.Fatal(err)
	}
	eng.RegisterMetrics(reg, opts.name)
	eng.Pool().RegisterMetrics(reg, opts.name)
	session := sql.NewSession(eng)
	session.ReadOnly = true
	session.Slow = obs.NewSlowOpLog(opts.slowOp, nil)
	session.Tracer = tracer
	reg.CounterFunc("taurus_slow_ops_fired_total",
		"Statements the slow-op log fired on (met or exceeded its threshold).",
		func() float64 { return float64(session.Slow.Fired()) })
	rep.Bind(eng, func(table string) {
		if _, err := session.Cat.Analyze(table); err != nil {
			log.Printf("replica: analyzing %s: %v", table, err)
		}
	})
	if err := rep.Start(0, 0); err != nil {
		log.Fatalf("replica: bootstrap: %v", err)
	}
	st := rep.Stats()
	log.Printf("replica bootstrapped: visible LSN %d, %d records tailed, %d tables attached",
		st.VisibleLSN, st.RecordsTailed, st.TablesAttached)
	mon.StartLoop(time.Second)
	stats := jsonHandler(func() any {
		return replicaStats{Replica: rep.Stats(), BufferPool: eng.Pool().ShardStatsSnapshot(),
			ScanRouting: rep.RouterStats(), SlowOpsFired: session.Slow.Fired()}
	})
	mux := newStatsMux(stats, reg, tracer.Spans, tracer.RecentTraces, events, mon)
	mux.HandleFunc("/query", queryHandler(func(q string) (*taurus.Result, error) {
		return session.Exec(q)
	}, func(q string) (*taurus.Result, uint64, error) {
		return session.ExecTraced(q, true)
	}))
	if statsAddr != "" && statsAddr != listen {
		serveStats(statsAddr, newStatsMux(stats, reg, tracer.Spans, tracer.RecentTraces, events, mon))
	}
	log.Printf("replica listening on %s (POST /query read-only, GET /stats, GET /metrics)", listen)
	if err := http.ListenAndServe(listen, mux); err != nil {
		log.Fatal(err)
	}
}
