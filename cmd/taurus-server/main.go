// taurus-server runs a standalone Page Store (or Log Store) behind the
// TCP transport, so a storage layer can be deployed as separate
// processes. A frontend connects by configuring the SAL with the
// servers' addresses and cluster.NewTCPClient as the transport.
//
// Usage:
//
//	taurus-server -listen :7000 -role pagestore -data-dir /var/lib/taurus/ps1
//	taurus-server -listen :7100 -role logstore -data-dir /var/lib/taurus/log1
//
// A logstore with -data-dir persists acknowledged batches to a
// segmented on-disk log and recovers them (tolerating a torn tail) on
// restart. A pagestore with -data-dir checkpoints its slices there on
// -checkpoint-interval and restores them on restart, reporting its
// persisted LSN so the frontend's SAL can drive log GC. Without
// -data-dir either node is memory-only.
//
// -stats-addr serves GET /stats as JSON: Log Stores report durable and
// GC watermarks plus the persistent log's counters (appends, fsyncs,
// rotations, GC bytes reclaimed); Page Stores report applied/persisted
// LSNs, apply/skip counters, and checkpoint age.
//
// A third role, frontend, runs an embedded full deployment and serves
// SQL over HTTP (POST /query) plus the frontend-side stats — the SAL's
// slice-partitioned write pipeline (per-lane windows sealed and seal
// reasons, adaptive flush thresholds, hot-slice promotions, apply lag
// per slice, backpressure stalls, commit/apply waits) and per-shard
// buffer pool counters. -write-lanes sizes the dedicated-lane pool:
//
//	taurus-server -role frontend -listen :7200 -stats-addr :7201 -data-dir /var/lib/taurus/fe -write-lanes 2
package main

import (
	"encoding/json"
	"flag"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"taurus"
	"taurus/internal/buffer"
	"taurus/internal/cluster"
	"taurus/internal/logstore"
	"taurus/internal/pagestore"
	"taurus/internal/pstore"
	"taurus/internal/sal"
)

func main() {
	listen := flag.String("listen", ":7000", "address to listen on")
	role := flag.String("role", "pagestore", "pagestore, logstore, or frontend")
	name := flag.String("name", "", "node name (defaults to the listen address)")
	ndpWorkers := flag.Int("ndp-workers", 4, "NDP worker threads (pagestore)")
	ndpQueue := flag.Int("ndp-queue", 1024, "NDP admission queue depth (pagestore)")
	dataDir := flag.String("data-dir", "", "durable directory: segmented log (logstore) or slice checkpoints (pagestore); empty = in-memory")
	flushInterval := flag.Duration("flush-interval", 0, "group-commit window (logstore; 0 = default 2ms)")
	segmentBytes := flag.Int64("segment-bytes", 0, "log segment rotation size (logstore; 0 = default 16MB)")
	ckptInterval := flag.Duration("checkpoint-interval", time.Minute, "slice checkpoint cadence (pagestore with -data-dir)")
	statsAddr := flag.String("stats-addr", "", "HTTP address for GET /stats (empty = disabled)")
	writeLanes := flag.Int("write-lanes", 0, "dedicated per-slice write lanes (frontend; 0 = default, negative disables promotion)")
	flag.Parse()

	if *name == "" {
		*name = *listen
	}
	var handler cluster.Handler
	var stats func() any
	switch *role {
	case "pagestore":
		opts := []pagestore.Option{
			pagestore.WithResourceControl(pagestore.NewResourceControl(*ndpWorkers, *ndpQueue)),
		}
		if *dataDir != "" {
			cs, err := pstore.Open(pstore.Options{Dir: *dataDir})
			if err != nil {
				log.Fatal(err)
			}
			opts = append(opts, pagestore.WithCheckpoints(cs))
		}
		ps := pagestore.New(*name, opts...)
		if *dataDir != "" {
			rst, err := ps.Restore()
			if err != nil {
				log.Fatal(err)
			}
			if rst.Slices > 0 || rst.Corrupt > 0 {
				log.Printf("pagestore %q restored %d slices (%d pages) from checkpoints, %d corrupt files skipped (min applied LSN %d)",
					*name, rst.Slices, rst.Pages, rst.Corrupt, rst.MinAppliedLSN)
			}
			if *ckptInterval > 0 {
				go func() {
					for range time.Tick(*ckptInterval) {
						st, err := ps.Checkpoint()
						if err != nil {
							log.Printf("pagestore %q checkpoint: %v", *name, err)
							continue
						}
						if st.SlicesWritten > 0 {
							log.Printf("pagestore %q checkpointed %d slices (%d pages, %d bytes), persisted LSN %d",
								*name, st.SlicesWritten, st.Pages, st.Bytes, st.PersistedLSN)
						}
					}
				}()
			}
		}
		handler = ps
		stats = func() any { return ps.NodeStats() }
	case "logstore":
		var ls *logstore.Store
		if *dataDir == "" {
			ls = logstore.New(*name)
		} else {
			var opts []logstore.Option
			if *flushInterval > 0 {
				opts = append(opts, logstore.WithFlushInterval(*flushInterval))
			}
			if *segmentBytes > 0 {
				opts = append(opts, logstore.WithSegmentBytes(*segmentBytes))
			}
			var err error
			ls, err = logstore.Open(*name, *dataDir, opts...)
			if err != nil {
				log.Fatal(err)
			}
			if ri := ls.Recovery(); ri.Entries > 0 || ri.TornEntry {
				log.Printf("logstore %q recovered %d entries from %d segments (torn tail: %v, durable LSN %d)",
					*name, ri.Entries, ri.Segments, ri.TornEntry, ls.DurableLSN())
			}
		}
		handler = ls
		stats = func() any { return ls.NodeStats() }
	case "frontend":
		runFrontend(*listen, *statsAddr, *dataDir, *ckptInterval, *writeLanes)
		return
	default:
		log.Fatalf("unknown role %q", *role)
	}
	if *statsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(stats()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		go func() {
			log.Printf("stats on http://%s/stats", *statsAddr)
			if err := http.ListenAndServe(*statsAddr, mux); err != nil {
				log.Printf("stats endpoint: %v", err)
			}
		}()
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s %q listening on %s", *role, *name, l.Addr())
	if err := cluster.Serve(l, handler); err != nil {
		log.Fatal(err)
	}
}

// frontendStats is the /stats payload of a frontend node: the SAL's
// group-commit pipeline counters, per-shard buffer pool counters, and
// the embedded storage nodes' states.
type frontendStats struct {
	WritePath  sal.PipelineStats
	BufferPool []buffer.ShardStats
	LogStores  []logstore.NodeStats
	PageStores []pagestore.StatsSnapshot
}

// runFrontend serves an embedded Taurus deployment over HTTP: POST
// /query executes one SQL statement (text/plain body, JSON result), and
// GET /stats on -stats-addr (or, if empty, the main listener) reports
// the write-pipeline / buffer-pool / storage-node counters.
func runFrontend(listen, statsAddr, dataDir string, ckptInterval time.Duration, writeLanes int) {
	cfg := taurus.Config{DataDir: dataDir, WriteLanes: writeLanes}
	if dataDir != "" && ckptInterval > 0 {
		cfg.CheckpointInterval = ckptInterval
	}
	db, err := taurus.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(frontendStats{
			WritePath:  db.WritePathStats(),
			BufferPool: db.BufferPoolStats(),
			LogStores:  db.LogStoreStats(),
			PageStores: db.PageStoreStats(),
		}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a SQL statement", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := db.Exec(string(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(res); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/stats", stats)
	if statsAddr != "" && statsAddr != listen {
		smux := http.NewServeMux()
		smux.HandleFunc("/stats", stats)
		go func() {
			log.Printf("stats on http://%s/stats", statsAddr)
			if err := http.ListenAndServe(statsAddr, smux); err != nil {
				log.Printf("stats endpoint: %v", err)
			}
		}()
	}
	log.Printf("frontend listening on %s (POST /query, GET /stats)", listen)
	if err := http.ListenAndServe(listen, mux); err != nil {
		log.Fatal(err)
	}
}
