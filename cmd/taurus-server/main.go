// taurus-server runs a standalone Page Store (or Log Store) behind the
// TCP transport, so a storage layer can be deployed as separate
// processes. A frontend connects by configuring the SAL with the
// servers' addresses and cluster.NewTCPClient as the transport.
//
// Usage:
//
//	taurus-server -listen :7000 -role pagestore
//	taurus-server -listen :7100 -role logstore -data-dir /var/lib/taurus/log1
//
// A logstore with -data-dir persists acknowledged batches to a
// segmented on-disk log and recovers them (tolerating a torn tail) on
// restart; without it the node is memory-only like the Page Stores.
package main

import (
	"flag"
	"log"
	"net"

	"taurus/internal/cluster"
	"taurus/internal/logstore"
	"taurus/internal/pagestore"
)

func main() {
	listen := flag.String("listen", ":7000", "address to listen on")
	role := flag.String("role", "pagestore", "pagestore or logstore")
	name := flag.String("name", "", "node name (defaults to the listen address)")
	ndpWorkers := flag.Int("ndp-workers", 4, "NDP worker threads (pagestore)")
	ndpQueue := flag.Int("ndp-queue", 1024, "NDP admission queue depth (pagestore)")
	dataDir := flag.String("data-dir", "", "durable log directory (logstore; empty = in-memory)")
	flushInterval := flag.Duration("flush-interval", 0, "group-commit window (logstore; 0 = default 2ms)")
	segmentBytes := flag.Int64("segment-bytes", 0, "log segment rotation size (logstore; 0 = default 16MB)")
	flag.Parse()

	if *name == "" {
		*name = *listen
	}
	var handler cluster.Handler
	switch *role {
	case "pagestore":
		rc := pagestore.NewResourceControl(*ndpWorkers, *ndpQueue)
		handler = pagestore.New(*name, pagestore.WithResourceControl(rc))
	case "logstore":
		if *dataDir == "" {
			handler = logstore.New(*name)
			break
		}
		var opts []logstore.Option
		if *flushInterval > 0 {
			opts = append(opts, logstore.WithFlushInterval(*flushInterval))
		}
		if *segmentBytes > 0 {
			opts = append(opts, logstore.WithSegmentBytes(*segmentBytes))
		}
		ls, err := logstore.Open(*name, *dataDir, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if ri := ls.Recovery(); ri.Entries > 0 || ri.TornEntry {
			log.Printf("logstore %q recovered %d entries from %d segments (torn tail: %v, durable LSN %d)",
				*name, ri.Entries, ri.Segments, ri.TornEntry, ls.DurableLSN())
		}
		handler = ls
	default:
		log.Fatalf("unknown role %q", *role)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s %q listening on %s", *role, *name, l.Addr())
	if err := cluster.Serve(l, handler); err != nil {
		log.Fatal(err)
	}
}
