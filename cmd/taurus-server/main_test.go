package main

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"taurus"
	"taurus/internal/obs"
)

// seedFrontend opens an in-memory deployment with a little data so every
// instrument has observations.
func seedFrontend(t *testing.T, cfg taurus.Config) *taurus.DB {
	t.Helper()
	db, err := taurus.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	stmts := []string{
		`CREATE TABLE obs_t (id BIGINT, v INT, PRIMARY KEY(id))`,
		`INSERT INTO obs_t VALUES (1, 10), (2, 20), (3, 30)`,
		`SELECT SUM(v) FROM obs_t WHERE id > 0`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return db
}

func get(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// TestFrontendMetricsEndpoint scrapes a live frontend's /metrics and
// checks the exposition is valid Prometheus text carrying the core
// families from every instrumented tier.
func TestFrontendMetricsEndpoint(t *testing.T) {
	db := seedFrontend(t, taurus.Config{})
	mux, err := frontendMux(db, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	families, err := obs.ValidateExposition(rec.Body.String())
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, want := range []string{
		"taurus_writepath_stage_seconds",
		"taurus_rpc_requests_total",
		"taurus_rpc_latency_seconds",
		"taurus_buffer_hits_total",
		"taurus_buffer_misses_total",
		"taurus_sal_durable_lsn",
		"taurus_logstore_durable_lsn",
		"taurus_pagestore_records_applied_total",
		"taurus_engine_rows_emitted_total",
	} {
		if _, ok := families[want]; !ok {
			t.Errorf("family %s missing from /metrics", want)
		}
	}
}

// TestReplicaMetricsEndpoint checks a replica's own /metrics page: its
// lag gauges and tailing counters, labeled with its name.
func TestReplicaMetricsEndpoint(t *testing.T) {
	db := seedFrontend(t, taurus.Config{})
	mux, err := frontendMux(db, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := get(t, mux, "/replica/1/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /replica/1/metrics: %d", rec.Code)
	}
	families, err := obs.ValidateExposition(rec.Body.String())
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, want := range []string{
		"taurus_replica_visible_lsn",
		"taurus_replica_lag_records",
		"taurus_replica_refresh_seconds",
	} {
		if _, ok := families[want]; !ok {
			t.Errorf("family %s missing from replica /metrics", want)
		}
	}
	if !strings.Contains(rec.Body.String(), `replica="replica-`) {
		t.Error("replica series not labeled with the replica name")
	}
}

// TestStatsEndpointBackwardCompatible checks /stats still serves the
// pre-existing JSON shape.
func TestStatsEndpointBackwardCompatible(t *testing.T) {
	db := seedFrontend(t, taurus.Config{})
	mux, err := frontendMux(db, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := get(t, mux, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /stats: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var st frontendStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding /stats: %v", err)
	}
	if len(st.LogStores) != 3 {
		t.Errorf("LogStores = %d, want 3", len(st.LogStores))
	}
	if len(st.PageStores) == 0 || len(st.BufferPool) == 0 {
		t.Errorf("empty PageStores (%d) or BufferPool (%d)", len(st.PageStores), len(st.BufferPool))
	}
	if st.WritePath.WindowsFlushed == 0 {
		t.Error("WritePath.WindowsFlushed = 0 after inserts")
	}
}

// TestStatsMuxServesPprof checks the profile endpoints ride along on the
// stats listener of every role.
func TestStatsMuxServesPprof(t *testing.T) {
	mux := newStatsMux(nil, obs.NewRegistry(), nil, nil, nil)
	rec := get(t, mux, "/debug/pprof/")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}

// TestSlowOpLog checks the threshold gate: statements above it log one
// structured line; below it, nothing.
func TestSlowOpLog(t *testing.T) {
	var buf bytes.Buffer
	db := seedFrontend(t, taurus.Config{
		SlowOpThreshold: time.Nanosecond,
		SlowOpLogger:    log.New(&buf, "", 0),
	})
	if _, err := db.Exec(`SELECT * FROM obs_t`); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SLOW-OP") {
		t.Fatalf("no SLOW-OP line at 1ns threshold; log: %q", out)
	}
	if !strings.Contains(out, "stages=") || !strings.Contains(out, "parse:") {
		t.Errorf("slow-op line missing stage breakdown: %q", out)
	}

	var quiet bytes.Buffer
	db2 := seedFrontend(t, taurus.Config{
		SlowOpThreshold: time.Hour,
		SlowOpLogger:    log.New(&quiet, "", 0),
	})
	if _, err := db2.Exec(`SELECT * FROM obs_t`); err != nil {
		t.Fatal(err)
	}
	if quiet.Len() != 0 {
		t.Errorf("slow-op fired below threshold: %q", quiet.String())
	}
}
