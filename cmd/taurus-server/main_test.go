package main

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"taurus"
	"taurus/internal/health"
	"taurus/internal/obs"
)

// seedFrontend opens an in-memory deployment with a little data so every
// instrument has observations.
func seedFrontend(t *testing.T, cfg taurus.Config) *taurus.DB {
	t.Helper()
	db, err := taurus.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	stmts := []string{
		`CREATE TABLE obs_t (id BIGINT, v INT, PRIMARY KEY(id))`,
		`INSERT INTO obs_t VALUES (1, 10), (2, 20), (3, 30)`,
		`SELECT SUM(v) FROM obs_t WHERE id > 0`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return db
}

func get(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// TestFrontendMetricsEndpoint scrapes a live frontend's /metrics and
// checks the exposition is valid Prometheus text carrying the core
// families from every instrumented tier.
func TestFrontendMetricsEndpoint(t *testing.T) {
	db := seedFrontend(t, taurus.Config{})
	mux, err := frontendMux(db, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	families, err := obs.ValidateExposition(rec.Body.String())
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, want := range []string{
		"taurus_writepath_stage_seconds",
		"taurus_rpc_requests_total",
		"taurus_rpc_latency_seconds",
		"taurus_buffer_hits_total",
		"taurus_buffer_misses_total",
		"taurus_sal_durable_lsn",
		"taurus_logstore_durable_lsn",
		"taurus_pagestore_records_applied_total",
		"taurus_engine_rows_emitted_total",
	} {
		if _, ok := families[want]; !ok {
			t.Errorf("family %s missing from /metrics", want)
		}
	}
}

// TestReplicaMetricsEndpoint checks a replica's own /metrics page: its
// lag gauges and tailing counters, labeled with its name.
func TestReplicaMetricsEndpoint(t *testing.T) {
	db := seedFrontend(t, taurus.Config{})
	mux, err := frontendMux(db, 1, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := get(t, mux, "/replica/1/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /replica/1/metrics: %d", rec.Code)
	}
	families, err := obs.ValidateExposition(rec.Body.String())
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, want := range []string{
		"taurus_replica_visible_lsn",
		"taurus_replica_lag_records",
		"taurus_replica_refresh_seconds",
	} {
		if _, ok := families[want]; !ok {
			t.Errorf("family %s missing from replica /metrics", want)
		}
	}
	if !strings.Contains(rec.Body.String(), `replica="replica-`) {
		t.Error("replica series not labeled with the replica name")
	}
}

// TestStatsEndpointBackwardCompatible checks /stats still serves the
// pre-existing JSON shape.
func TestStatsEndpointBackwardCompatible(t *testing.T) {
	db := seedFrontend(t, taurus.Config{})
	mux, err := frontendMux(db, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := get(t, mux, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /stats: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var st frontendStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding /stats: %v", err)
	}
	if len(st.LogStores) != 3 {
		t.Errorf("LogStores = %d, want 3", len(st.LogStores))
	}
	if len(st.PageStores) == 0 || len(st.BufferPool) == 0 {
		t.Errorf("empty PageStores (%d) or BufferPool (%d)", len(st.PageStores), len(st.BufferPool))
	}
	if st.WritePath.WindowsFlushed == 0 {
		t.Error("WritePath.WindowsFlushed = 0 after inserts")
	}
}

// TestStatsMuxServesPprof checks the profile endpoints ride along on the
// stats listener of every role.
func TestStatsMuxServesPprof(t *testing.T) {
	mux := newStatsMux(nil, obs.NewRegistry(), nil, nil, nil, nil)
	rec := get(t, mux, "/debug/pprof/")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}

// TestHealthEndpoints checks the frontend mux serves the full health
// surface: liveness, readiness, the check report, the aggregated
// cluster view, and the embedded replica's report.
func TestHealthEndpoints(t *testing.T) {
	db := seedFrontend(t, taurus.Config{})
	mux, err := frontendMux(db, 1, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/healthz", "/ready", "/health", "/cluster/health", "/replica/1/health", "/replica/1/ready", "/replica/1/healthz"} {
		rec := get(t, mux, path)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200 (%s)", path, rec.Code, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s content type %q", path, ct)
		}
	}

	var rep health.Report
	if err := json.Unmarshal(get(t, mux, "/health").Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Role != "frontend" || !rep.Ready || len(rep.Checks) == 0 {
		t.Errorf("frontend /health: %+v", rep)
	}

	var view health.ClusterView
	if err := json.Unmarshal(get(t, mux, "/cluster/health").Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Peers) == 0 {
		t.Error("/cluster/health has no peers for the embedded fleet")
	}
	for _, p := range view.Peers {
		if p.State != health.PeerAlive {
			t.Errorf("embedded peer %s is %v", p.Name, p.State)
		}
	}

	if err := json.Unmarshal(get(t, mux, "/replica/1/health").Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Role != "replica" {
		t.Errorf("replica /health role = %q", rep.Role)
	}
}

// TestBuildInfoMetrics checks every frontend registry exports the build
// identity and uptime series.
func TestBuildInfoMetrics(t *testing.T) {
	db := seedFrontend(t, taurus.Config{})
	mux, err := frontendMux(db, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	body := get(t, mux, "/metrics").Body.String()
	if !strings.Contains(body, "taurus_build_info{") || !strings.Contains(body, `go="`) {
		t.Error("taurus_build_info missing or unlabeled")
	}
	if !strings.Contains(body, "taurus_uptime_seconds") {
		t.Error("taurus_uptime_seconds missing")
	}
}

// TestParsePeers checks the -peers flag grammar.
func TestParsePeers(t *testing.T) {
	got := parsePeers("logstore=127.0.0.1:7100, pagestore=127.0.0.1:7000,127.0.0.1:7300 ,")
	want := []clusterPeer{
		{role: "logstore", addr: "127.0.0.1:7100"},
		{role: "pagestore", addr: "127.0.0.1:7000"},
		{role: "peer", addr: "127.0.0.1:7300"},
	}
	if len(got) != len(want) {
		t.Fatalf("parsePeers = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if parsePeers("") != nil {
		t.Error("empty -peers should parse to nil")
	}
}

// TestSlowOpLog checks the threshold gate: statements above it log one
// structured line; below it, nothing.
func TestSlowOpLog(t *testing.T) {
	var buf bytes.Buffer
	db := seedFrontend(t, taurus.Config{
		SlowOpThreshold: time.Nanosecond,
		SlowOpLogger:    log.New(&buf, "", 0),
	})
	if _, err := db.Exec(`SELECT * FROM obs_t`); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SLOW-OP") {
		t.Fatalf("no SLOW-OP line at 1ns threshold; log: %q", out)
	}
	if !strings.Contains(out, "stages=") || !strings.Contains(out, "parse:") {
		t.Errorf("slow-op line missing stage breakdown: %q", out)
	}

	var quiet bytes.Buffer
	db2 := seedFrontend(t, taurus.Config{
		SlowOpThreshold: time.Hour,
		SlowOpLogger:    log.New(&quiet, "", 0),
	})
	if _, err := db2.Exec(`SELECT * FROM obs_t`); err != nil {
		t.Fatal(err)
	}
	if quiet.Len() != 0 {
		t.Errorf("slow-op fired below threshold: %q", quiet.String())
	}
}
