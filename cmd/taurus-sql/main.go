// taurus-sql is an interactive SQL shell over an embedded Taurus
// deployment. Statements end with ';'. Meta commands:
//
//	\ndp on|off    toggle near-data processing
//	\stats         print network / engine / Page Store counters
//	\cold          clear the buffer pool
//	\quit          exit
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"strings"

	"taurus"
)

func main() {
	db, err := taurus.Open(taurus.Config{})
	if err != nil {
		log.Fatal(err)
	}
	db.SetNDPPageThreshold(1)
	fmt.Println("taurus-sql — embedded Taurus with NDP (end statements with ';')")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var buf strings.Builder
	prompt := func() { fmt.Print("taurus> ") }
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, `\`) {
			runMeta(db, trimmed)
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("     -> ")
			continue
		}
		stmt := strings.TrimSpace(buf.String())
		buf.Reset()
		if stmt == "" || stmt == ";" {
			prompt()
			continue
		}
		res, err := db.Exec(stmt)
		switch {
		case err != nil:
			fmt.Println("error:", err)
		case res.Explain != "":
			fmt.Print(res.Explain)
		case res.Message != "":
			fmt.Println(res.Message)
		default:
			fmt.Println(strings.Join(res.Columns, " | "))
			for _, row := range res.Rows {
				parts := make([]string, len(row))
				for i, d := range row {
					parts[i] = d.String()
				}
				fmt.Println(strings.Join(parts, " | "))
			}
			fmt.Printf("(%d rows)\n", len(res.Rows))
		}
		prompt()
	}
}

func runMeta(db *taurus.DB, cmd string) {
	switch {
	case cmd == `\quit` || cmd == `\q`:
		os.Exit(0)
	case cmd == `\ndp on`:
		db.SetNDP(true)
		fmt.Println("NDP enabled")
	case cmd == `\ndp off`:
		db.SetNDP(false)
		fmt.Println("NDP disabled")
	case cmd == `\cold`:
		db.ClearBufferPool()
		fmt.Println("buffer pool cleared")
	case cmd == `\stats`:
		n := db.NetworkStats()
		fmt.Printf("network: %d reqs, %d bytes sent, %d bytes received (%d batch reads)\n",
			n.Requests, n.BytesSent, n.BytesReceived, n.BatchReads)
		e := db.EngineStats()
		fmt.Printf("engine: %d rows examined, %d NDP pages consumed, %d skipped-completed\n",
			e.RowsExaminedSQL, e.NDPPagesConsumed, e.SkippedCompleted)
		for i, s := range db.PageStoreStats() {
			fmt.Printf("pagestore-%d: %d log recs, %d NDP pages (%d skipped)\n",
				i+1, s.LogRecordsApplied, s.NDPPagesProcessed, s.NDPPagesSkipped)
		}
	default:
		fmt.Println(`meta commands: \ndp on|off  \stats  \cold  \quit`)
	}
}
