// taurus-sql is an interactive SQL shell over an embedded Taurus
// deployment. Statements end with ';'. Meta commands:
//
//	\ndp on|off    toggle near-data processing
//	\trace on|off  toggle per-statement distributed traces
//	\stats         print network / engine / Page Store counters
//	\cold          clear the buffer pool
//	\quit          exit
//
// With -trace (or after \trace on), every statement runs under a forced
// distributed trace and the assembled cross-node breakdown — frontend
// statement root, SAL window/apply spans, Log Store append spans, Page
// Store apply spans — prints inline after the result.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"taurus"
	"taurus/internal/obs"
)

func main() {
	trace := flag.Bool("trace", false, "run every statement under a forced distributed trace and print the assembled span tree")
	flag.Parse()
	db, err := taurus.Open(taurus.Config{})
	if err != nil {
		log.Fatal(err)
	}
	tracing := *trace
	db.SetNDPPageThreshold(1)
	fmt.Println("taurus-sql — embedded Taurus with NDP (end statements with ';')")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var buf strings.Builder
	prompt := func() { fmt.Print("taurus> ") }
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, `\`) {
			runMeta(db, trimmed, &tracing)
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("     -> ")
			continue
		}
		stmt := strings.TrimSpace(buf.String())
		buf.Reset()
		if stmt == "" || stmt == ";" {
			prompt()
			continue
		}
		var res *taurus.Result
		var traceID uint64
		if tracing {
			res, traceID, err = db.ExecTraced(stmt)
		} else {
			res, err = db.Exec(stmt)
		}
		switch {
		case err != nil:
			fmt.Println("error:", err)
		case res.Explain != "":
			fmt.Print(res.Explain)
		case res.Message != "":
			fmt.Println(res.Message)
		default:
			fmt.Println(strings.Join(res.Columns, " | "))
			for _, row := range res.Rows {
				parts := make([]string, len(row))
				for i, d := range row {
					parts[i] = d.String()
				}
				fmt.Println(strings.Join(parts, " | "))
			}
			fmt.Printf("(%d rows)\n", len(res.Rows))
		}
		if traceID != 0 {
			// Spans from the async apply fan-out may still be in flight;
			// everything covering the acknowledged statement is here.
			fmt.Printf("trace %x:\n%s", traceID,
				obs.FormatTrace(obs.AssembleTrace(db.TraceSpans(traceID))))
		}
		prompt()
	}
}

func runMeta(db *taurus.DB, cmd string, tracing *bool) {
	switch {
	case cmd == `\quit` || cmd == `\q`:
		os.Exit(0)
	case cmd == `\ndp on`:
		db.SetNDP(true)
		fmt.Println("NDP enabled")
	case cmd == `\ndp off`:
		db.SetNDP(false)
		fmt.Println("NDP disabled")
	case cmd == `\trace on`:
		*tracing = true
		fmt.Println("tracing enabled (forced sample per statement)")
	case cmd == `\trace off`:
		*tracing = false
		fmt.Println("tracing disabled")
	case cmd == `\cold`:
		db.ClearBufferPool()
		fmt.Println("buffer pool cleared")
	case cmd == `\stats`:
		n := db.NetworkStats()
		fmt.Printf("network: %d reqs, %d bytes sent, %d bytes received (%d batch reads)\n",
			n.Requests, n.BytesSent, n.BytesReceived, n.BatchReads)
		e := db.EngineStats()
		fmt.Printf("engine: %d rows examined, %d NDP pages consumed, %d skipped-completed\n",
			e.RowsExaminedSQL, e.NDPPagesConsumed, e.SkippedCompleted)
		for i, s := range db.PageStoreStats() {
			fmt.Printf("pagestore-%d: %d log recs, %d NDP pages (%d skipped)\n",
				i+1, s.LogRecordsApplied, s.NDPPagesProcessed, s.NDPPagesSkipped)
		}
	default:
		fmt.Println(`meta commands: \ndp on|off  \trace on|off  \stats  \cold  \quit`)
	}
}
