// taurus-bench replays the paper's evaluation (§VII) and prints the
// tables behind each figure.
//
// Usage:
//
//	taurus-bench [-sf 0.005] [fig5|fig6|fig7|fig8|fig9|q4-bufferpool|durability|checkpoint|writepath|replicas|analytics|all]
//
// writepath compares the serial (pre-pipeline) and pipelined
// group-commit write paths under concurrent committers and writes the
// result to -writepath-out (default BENCH_writepath.json).
//
// replicas measures read-QPS scaling across push-subscribed read
// replicas beside one continuous writer, plus sampled replication lag
// and the per-message-type RPC load on the storage cluster, and
// writes the result to -replicas-out (default BENCH_replicas.json).
//
// analytics sweeps the parallel NDP scan scheduler — Q6 (scalar merge)
// and Q1G (grouped merge) at each -analytics-levels parallelism with
// least-loaded replica routing on and off — then measures master write
// QPS alone vs under continuous replica scans, and writes the result
// to -analytics-out (default BENCH_analytics.json).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"taurus/internal/bench"
)

func main() {
	sf := flag.Float64("sf", 0.005, "TPC-H scale factor")
	commits := flag.Int("commits", 1500, "durable commits per worker count (writepath)")
	skewCommits := flag.Int("skew-commits", 800, "hot-slice commits in the skewed scenario (writepath; 0 = skip)")
	skewDelay := flag.Duration("skew-delay", 20*time.Millisecond, "injected apply latency of the slow Page Store replica (writepath)")
	wpOut := flag.String("writepath-out", "BENCH_writepath.json", "write-path JSON report path (writepath; empty = don't write)")
	repDuration := flag.Duration("replica-duration", 1500*time.Millisecond, "measurement window per replica count (replicas)")
	repCounts := flag.String("replica-counts", "1,2,4,8,16", "comma-separated replica counts (replicas)")
	repReaders := flag.Int("replica-readers", 2, "reader goroutines per replica (replicas)")
	repOut := flag.String("replicas-out", "BENCH_replicas.json", "replica-scaling JSON report path (replicas; empty = don't write)")
	anRuns := flag.Int("analytics-runs", 3, "cold-pool runs per cell (analytics)")
	anLevels := flag.String("analytics-levels", "1,2,4,8", "comma-separated scan parallelism levels (analytics)")
	anHTAP := flag.Duration("analytics-htap-duration", 800*time.Millisecond, "write-QPS window, alone and under replica scans (analytics)")
	anOut := flag.String("analytics-out", "BENCH_analytics.json", "parallel-scan JSON report path (analytics; empty = don't write)")
	flag.Parse()
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	if which == "analytics" {
		var levels []int
		for _, part := range strings.Split(*anLevels, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				log.Fatalf("bad -analytics-levels entry %q", part)
			}
			levels = append(levels, n)
		}
		fmt.Printf("Loading TPC-H at SF %g for the parallel-scan sweep...\n", *sf)
		rep, err := bench.Analytics(*sf, *anRuns, levels, *anHTAP)
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintAnalytics(os.Stdout, rep)
		if *anOut != "" {
			if err := bench.WriteAnalyticsJSON(*anOut, rep); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("report written to %s\n", *anOut)
		}
		return
	}
	if which == "replicas" {
		var counts []int
		for _, part := range strings.Split(*repCounts, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				log.Fatalf("bad -replica-counts entry %q", part)
			}
			counts = append(counts, n)
		}
		rows, err := bench.Replicas(*repDuration, counts, *repReaders)
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintReplicas(os.Stdout, rows)
		if *repOut != "" {
			if err := bench.WriteReplicasJSON(*repOut, bench.BuildReplicasReport(rows)); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("report written to %s\n", *repOut)
		}
		return
	}
	if which == "writepath" {
		// No TPC-H fixture needed: the write path benchmark builds its
		// own durable clusters.
		rows, err := bench.WritePath(*commits, nil)
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintWritePath(os.Stdout, rows)
		rep := bench.BuildWritePathReport(rows)
		if *skewCommits > 0 {
			fmt.Println()
			skewRows, promotions, err := bench.SkewedWritePath(*skewCommits, 4, *skewDelay)
			if err != nil {
				log.Fatal(err)
			}
			bench.PrintSkewedWritePath(os.Stdout, skewRows, promotions)
			rep.AddSkewed(skewRows, promotions)
		}
		fmt.Println()
		ovh, err := bench.TraceOverhead(*commits, 8)
		if err != nil {
			log.Fatal(err)
		}
		bench.PrintTraceOverhead(os.Stdout, ovh)
		rep.TraceOverhead = &ovh
		if *wpOut != "" {
			if err := bench.WriteWritePathJSON(*wpOut, rep); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("report written to %s\n", *wpOut)
		}
		return
	}
	fmt.Printf("Loading TPC-H at SF %g on a 4-Page-Store, 3-way-replicated cluster...\n", *sf)
	f, err := bench.NewFixture(*sf)
	if err != nil {
		log.Fatal(err)
	}
	run := func(name string, fn func() error) {
		if which != "all" && which != name {
			return
		}
		fmt.Println()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	run("fig5", func() error {
		rows, err := f.Fig5()
		if err != nil {
			return err
		}
		bench.PrintFig5(os.Stdout, rows)
		return nil
	})
	run("fig6", func() error {
		rows, err := f.Fig6()
		if err != nil {
			return err
		}
		bench.PrintFig6(os.Stdout, rows)
		return nil
	})
	run("fig7", func() error {
		res, err := f.Fig7()
		if err != nil {
			return err
		}
		bench.PrintFig7(os.Stdout, res)
		return nil
	})
	run("fig8", func() error {
		res, err := f.Fig8()
		if err != nil {
			return err
		}
		bench.PrintFig8(os.Stdout, res)
		return nil
	})
	run("fig9", func() error {
		rows, err := f.Fig9()
		if err != nil {
			return err
		}
		bench.PrintFig9(os.Stdout, rows)
		return nil
	})
	run("durability", func() error {
		rows, err := bench.Durability(0, nil)
		if err != nil {
			return err
		}
		bench.PrintDurability(os.Stdout, rows)
		fmt.Println()
		rec, err := bench.RecoveryTimes(nil)
		if err != nil {
			return err
		}
		bench.PrintRecovery(os.Stdout, rec)
		return nil
	})
	run("checkpoint", func() error {
		rows, err := bench.CheckpointRecovery(nil)
		if err != nil {
			return err
		}
		bench.PrintCheckpoint(os.Stdout, rows)
		return nil
	})
	run("q4-bufferpool", func() error {
		noNDP, withNDP, err := f.Q4BufferPool()
		if err != nil {
			return err
		}
		fmt.Println("§VII-D buffer-pool experiment (lineitem pages resident after Q1–Q3):")
		fmt.Printf("  NDP disabled: %d pages\n  NDP enabled:  %d pages\n", noNDP, withNDP)
		fmt.Println("  (paper: 1,272,972 vs 24,186)")
		return nil
	})
}
