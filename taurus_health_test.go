package taurus

import (
	"strings"
	"testing"
	"time"

	"taurus/internal/health"
)

// TestHealthReportEmbedded checks a healthy embedded deployment: the
// frontend monitor carries the write-pipeline and checkpointer probes,
// all OK, and the node reports ready.
func TestHealthReportEmbedded(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE ht (id BIGINT, v INT, PRIMARY KEY(id))`)
	mustExec(t, db, `INSERT INTO ht VALUES (1, 10), (2, 20)`)

	r := db.HealthReport()
	if r.Role != "frontend" || r.Node != "frontend" {
		t.Errorf("identity = %s/%s", r.Node, r.Role)
	}
	if !r.Ready || r.Worst() != health.StatusOK {
		t.Fatalf("healthy deployment not OK/ready: %+v", r)
	}
	want := map[string]bool{
		"pipeline.progress":      false,
		"pipeline.poisoned":      false,
		"pipeline.apply_backlog": false,
		"frontend.checkpointer":  false,
	}
	for _, c := range r.Checks {
		if _, ok := want[c.Name]; ok {
			want[c.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("check %s missing from the frontend report", name)
		}
	}
}

// TestClusterHealthTracksFleet checks the master's failure detector
// tracks every embedded storage node as Alive, with pings flowing.
func TestClusterHealthTracksFleet(t *testing.T) {
	db, err := Open(Config{HeartbeatInterval: 10 * time.Millisecond,
		SuspectThreshold: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE ht2 (id BIGINT, v INT, PRIMARY KEY(id))`)

	// Wait for a few heartbeat rounds to land pongs on every peer.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v := db.ClusterHealth()
		logstores, pagestores := 0, 0
		allPinged := true
		for _, p := range v.Peers {
			if p.State != health.PeerAlive {
				t.Fatalf("peer %s is %v, want alive", p.Name, p.State)
			}
			if p.Pings == 0 {
				allPinged = false
			}
			switch p.Role {
			case "logstore":
				logstores++
			case "pagestore":
				pagestores++
			}
		}
		if logstores == 3 && pagestores > 0 && allPinged {
			if v.Worst() != health.StatusOK {
				t.Fatalf("healthy fleet folds to %v", v.Worst())
			}
			if v.Node != "frontend" || v.Self.Role != "frontend" {
				t.Errorf("view identity: %s / %s", v.Node, v.Self.Role)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pings never covered the fleet: %+v", v.Peers)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeadPeerDetection tracks a peer that never answers and checks it
// is Suspect and then Dead within 2x the suspect threshold (the
// acceptance deadline), with the transitions in the flight recorder and
// the cluster fold turning critical.
func TestDeadPeerDetection(t *testing.T) {
	const suspect = 200 * time.Millisecond
	db, err := Open(Config{HeartbeatInterval: 20 * time.Millisecond,
		SuspectThreshold: suspect})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	db.HealthDetector().Track("ghost-ps", "pagestore")
	start := time.Now()

	waitState := func(want health.PeerState, deadline time.Duration) {
		t.Helper()
		for time.Since(start) < deadline {
			for _, p := range db.ClusterHealth().Peers {
				if p.Name == "ghost-ps" && p.State >= want {
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("ghost-ps never reached %v within %v", want, deadline)
	}
	// Suspect by ~1x threshold, Dead by 2x — allow generous scheduling
	// slop on top of the contractual deadline.
	waitState(health.PeerSuspect, 2*suspect+3*time.Second)
	waitState(health.PeerDead, 2*(2*suspect)+3*time.Second)

	v := db.ClusterHealth()
	if v.Worst() != health.StatusCritical {
		t.Errorf("cluster fold with a dead peer = %v, want critical", v.Worst())
	}

	var sawSuspect, sawDead bool
	for _, e := range db.EventRing().Events() {
		if e.Kind != "peer.state" || !strings.Contains(e.Detail, "ghost-ps") {
			continue
		}
		if strings.Contains(e.Detail, "-> suspect") {
			sawSuspect = true
		}
		if strings.Contains(e.Detail, "-> dead") {
			sawDead = true
		}
	}
	if !sawSuspect || !sawDead {
		t.Errorf("transitions not in flight recorder (suspect=%v dead=%v)", sawSuspect, sawDead)
	}
}

// TestReplicaTrackedAndForgotten checks an attached replica joins the
// master's peer table and leaves it on a clean Close.
func TestReplicaTrackedAndForgotten(t *testing.T) {
	db, err := Open(Config{HeartbeatInterval: 10 * time.Millisecond,
		SuspectThreshold: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE ht3 (id BIGINT, v INT, PRIMARY KEY(id))`)

	rep, err := OpenReplica(Config{Master: db})
	if err != nil {
		t.Fatal(err)
	}
	findReplica := func() *health.PeerHealth {
		for _, p := range db.ClusterHealth().Peers {
			if p.Role == "replica" {
				return &p
			}
		}
		return nil
	}
	if findReplica() == nil {
		t.Fatal("replica not tracked by the master's detector")
	}
	// The replica serves its own health report.
	if r := rep.HealthReport(); r.Role != "replica" || !r.Ready {
		t.Errorf("replica report: %+v", r)
	}
	rep.Close()
	if p := findReplica(); p != nil {
		t.Errorf("replica still tracked after Close: %+v", p)
	}
}

// TestHeartbeatsDisabled checks negative HeartbeatInterval opts out:
// no detector, and ClusterHealth still answers with an empty peer set.
func TestHeartbeatsDisabled(t *testing.T) {
	db, err := Open(Config{HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.HealthDetector() != nil {
		t.Fatal("detector exists with heartbeats disabled")
	}
	v := db.ClusterHealth()
	if len(v.Peers) != 0 {
		t.Errorf("peers without a detector: %+v", v.Peers)
	}
	if v.Self.Role != "frontend" {
		t.Errorf("self report role = %q", v.Self.Role)
	}
}
