// Best-effort NDP: Page Stores are multi-tenant and may skip NDP
// processing under resource pressure (§IV-D2). This example throttles
// the stores progressively and shows that query answers never change —
// the frontend completes whatever the stores skipped — while the
// network savings degrade gracefully (NDP benefit "is not
// all-or-nothing").
package main

import (
	"fmt"
	"log"

	"taurus/internal/core"
	"taurus/internal/engine"
	"taurus/internal/expr"
	"taurus/internal/testutil"
	"taurus/internal/types"
)

func main() {
	c, err := testutil.NewCluster(testutil.Options{PoolPages: 128})
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := c.LoadWorkers(5000)
	if err != nil {
		log.Fatal(err)
	}
	pred := expr.LT(expr.Col(1, "age"), expr.ConstInt(30))

	run := func(label string) {
		c.Engine.Pool().Clear()
		before := c.Transport.Stats.Snapshot()
		em0 := c.Engine.Metrics.Snapshot()
		count := 0
		err := c.Engine.Scan(engine.ScanOptions{
			Index: tbl.Primary, Predicate: pred, Projection: []int{0},
			NDP: &engine.NDPPush{PushPredicate: true, PushProjection: true},
		}, func(types.Row, []core.AggState) error {
			count++
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		net := c.Transport.Stats.Snapshot().Sub(before)
		em := c.Engine.Metrics.Snapshot().Sub(em0)
		fmt.Printf("%-22s rows=%d  bytes=%8d  pages: NDP=%d skipped-completed=%d\n",
			label, count, net.BytesReceived, em.NDPPagesConsumed, em.SkippedCompleted)
	}

	fmt.Println("Same scan under increasing Page Store pressure:")
	run("no pressure")
	for _, rc := range c.Controls {
		rc.SetSkipEvery(3) // every third page skipped
	}
	run("skip every 3rd page")
	for _, rc := range c.Controls {
		rc.SetForceSkip(true) // stores refuse all NDP work
	}
	run("all pages skipped")
}
