// Three-level parallelism (§VI): PQ worker threads on the SQL node,
// SAL fan-out of batch-read sub-batches across Page Stores, and
// concurrent NDP worker threads within each Page Store. This example
// runs a parallel NDP scan and shows all three levels engaged.
package main

import (
	"fmt"
	"log"

	"taurus/internal/engine"
	"taurus/internal/exec"
	"taurus/internal/expr"
	"taurus/internal/testutil"
	"taurus/internal/types"
)

func main() {
	c, err := testutil.NewCluster(testutil.Options{
		PageStores: 4, PagesPerSlice: 16, PoolPages: 128,
	})
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := c.LoadWorkers(8000)
	if err != nil {
		log.Fatal(err)
	}
	c.Engine.Pool().Clear()

	// Level 1: PQ range-partitions the scan across worker operators.
	const dop = 4
	ranges := exec.PartitionRanges(0, 7999, dop)
	var workers []exec.Operator
	for _, rg := range ranges {
		pred := expr.AndAll(
			expr.GE(expr.Col(0, "id"), expr.ConstInt(rg[0])),
			expr.LE(expr.Col(0, "id"), expr.ConstInt(rg[1])),
			expr.LT(expr.Col(1, "age"), expr.ConstInt(35)),
		)
		workers = append(workers, &exec.TableScan{
			Opts: engine.ScanOptions{
				Index:      tbl.Primary,
				Start:      types.EncodeKey(nil, types.Row{types.NewInt(rg[0])}),
				End:        types.EncodeKey(nil, types.Row{types.NewInt(rg[1])}),
				Predicate:  pred,
				Projection: []int{0, 1},
				NDP:        &engine.NDPPush{PushPredicate: true, PushProjection: true},
			},
			Cols: []string{"id", "age"},
		})
	}
	ctx := exec.NewCtx(c.Engine)
	before := c.Transport.Stats.Snapshot()
	rows, err := exec.Run(ctx, &exec.Gather{Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	net := c.Transport.Stats.Snapshot().Sub(before)

	fmt.Printf("parallel NDP scan: %d matching rows via %d PQ workers\n", len(rows), dop)
	fmt.Printf("level 1 (SQL node):    %d PQ sub-scans\n", dop)
	fmt.Printf("level 2 (across PS):   %d batch-read sub-batches fanned out by the SAL\n", net.BatchReads)
	fmt.Println("level 3 (within a PS): NDP pages processed per store:")
	for i, ps := range c.PageStores {
		s := ps.Snapshot()
		fmt.Printf("   %s: %d pages, %d records examined\n",
			fmt.Sprintf("pagestore-%d", i+1), s.NDPPagesProcessed, s.NDPRecordsIn)
	}
	var agg int64
	for _, r := range rows {
		agg += r[1].I
	}
	fmt.Printf("checksum: sum(age) = %d\n", agg)
}
