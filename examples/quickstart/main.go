// Quickstart: open an embedded Taurus deployment, create the paper's
// Worker table (Listing 1), and run the salary query with NDP — printing
// the EXPLAIN extras of Listing 2.
package main

import (
	"fmt"
	"log"
	"strings"

	"taurus"
)

func main() {
	db, err := taurus.Open(taurus.Config{})
	if err != nil {
		log.Fatal(err)
	}
	// The optimizer's NDP threshold is calibrated for big tables; lower
	// it so this demo's small table qualifies.
	db.SetNDPPageThreshold(1)

	must(db.Exec(`CREATE TABLE worker (
		id BIGINT NOT NULL,
		age INT NOT NULL,
		join_date DATE NOT NULL,
		salary DECIMAL(15,2) NOT NULL,
		name VARCHAR,
		PRIMARY KEY (id))`))

	// Load a few thousand workers.
	var sb strings.Builder
	sb.WriteString("INSERT INTO worker VALUES ")
	for i := 0; i < 3000; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, %d, DATE '%04d-%02d-01', %d.00, 'worker-%d')",
			i, 20+i%45, 2005+i%10, 1+i%12, 3000+i%4000, i)
	}
	must(db.Exec(sb.String()))

	query := `SELECT AVG(salary) FROM worker
	          WHERE age < 40 AND
	                join_date >= DATE '2010-01-01' AND
	                join_date < DATE '2010-01-01' + INTERVAL '1' YEAR`

	// Loading warmed the buffer pool; start cold like a fresh server so
	// the scan really reads from the Page Stores.
	db.ClearBufferPool()

	// EXPLAIN shows which pushdowns the optimizer chose (Listing 2).
	exp, err := db.Exec("EXPLAIN " + query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("EXPLAIN:")
	fmt.Println(exp.Explain)

	before := db.NetworkStats()
	res := must(db.Exec(query))
	after := db.NetworkStats()
	fmt.Printf("AVG(salary) with NDP    = %s  (network bytes: %d)\n",
		res.Rows[0][0], after.BytesReceived-before.BytesReceived)

	// Same query without NDP: identical answer, far more data on the wire.
	db.SetNDP(false)
	db.ClearBufferPool()
	before = db.NetworkStats()
	res = must(db.Exec(query))
	after = db.NetworkStats()
	fmt.Printf("AVG(salary) without NDP = %s  (network bytes: %d)\n",
		res.Rows[0][0], after.BytesReceived-before.BytesReceived)
}

func must(r *taurus.Result, err error) *taurus.Result {
	if err != nil {
		log.Fatal(err)
	}
	return r
}
