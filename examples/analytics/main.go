// Analytics: load a scaled TPC-H database and replay the paper's
// flagship analytical queries (Q1, Q6, Q12, Q15) with NDP off and on,
// printing the network and SQL-CPU reductions of Fig. 7.
package main

import (
	"fmt"
	"log"

	"taurus/internal/bench"
	"taurus/internal/plan"
	"taurus/internal/tpch"
)

func main() {
	fmt.Println("Loading TPC-H (scale 0.002)...")
	f, err := bench.NewFixture(0.002)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %14s %14s %10s %10s\n",
		"query", "bytes(noNDP)", "bytes(NDP)", "net-red", "cpu-red")
	for _, name := range []string{"Q1", "Q6", "Q12", "Q15"} {
		q, err := tpch.QueryByName(name)
		if err != nil {
			log.Fatal(err)
		}
		f.DB.Eng.Pool().Clear()
		off, err := f.RunQuery(q, false)
		if err != nil {
			log.Fatal(err)
		}
		f.DB.Eng.Pool().Clear()
		on, err := f.RunQuery(q, true)
		if err != nil {
			log.Fatal(err)
		}
		netRed := (1 - float64(on.NetBytes)/float64(off.NetBytes)) * 100
		cpuRed := (1 - on.SQLCPUUnits/off.SQLCPUUnits) * 100
		fmt.Printf("%-6s %14d %14d %9.1f%% %9.1f%%\n",
			name, off.NetBytes, on.NetBytes, netRed, cpuRed)
		// Show what the optimizer decided for each table access.
		for _, r := range on.Reports {
			if extras := plan.ExplainExtras(r.Spec, r.Dec); extras != "" {
				fmt.Printf("       %s: %s\n", r.Spec.Table, extras)
			}
		}
	}
}
