package taurus

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"taurus/internal/core"
	"taurus/internal/engine"
	"taurus/internal/exec"
	"taurus/internal/obs"
	"taurus/internal/tpch"
	"taurus/internal/types"
)

// runTPCH executes one query against a tpch.DB binding and renders the
// rows for comparison.
func runTPCH(t *testing.T, db *tpch.DB, eng *engine.Engine, q tpch.Query) []string {
	t.Helper()
	env := tpch.NewEnv(db, true)
	rows, err := tpch.Run(env, exec.NewCtx(eng), q)
	if err != nil {
		t.Fatalf("%s: %v", q.Name, err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = fmt.Sprintf("%v", d)
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func waitReplicaCaughtUp(t *testing.T, rep *DB) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := rep.ReplicaStats()
		if st.TablesAttached >= 8 && st.LagRecords == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up (attached=%d lag=%d)", st.TablesAttached, st.LagRecords)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicaParallelTPCHMatchesMaster loads TPC-H on a master, attaches
// a log-tailing replica, and asserts the parallel NDP scans on the
// replica's ReadView return exactly the master's results; that replica
// mutations stay rejected; and that a prepared scan never stamps an LSN
// beyond the replica's visible LSN, even while the master keeps writing.
func TestReplicaParallelTPCHMatchesMaster(t *testing.T) {
	master, err := Open(Config{PagesPerSlice: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	mdb, err := tpch.Load(master.Engine(), 0.005)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := OpenReplica(Config{Master: master, ScanParallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitReplicaCaughtUp(t, rep)
	rdb, err := tpch.Attach(rep.Engine(), 0.005)
	if err != nil {
		t.Fatal(err)
	}

	q6, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []tpch.Query{q6, {Name: "Q1G", Build: tpch.Q1G}} {
		want := runTPCH(t, mdb, master.Engine(), q)
		got := runTPCH(t, rdb, rep.Engine(), q)
		if len(got) != len(want) {
			t.Fatalf("%s: replica rows = %d, master rows = %d", q.Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s row %d: replica %q != master %q", q.Name, i, got[i], want[i])
			}
		}
	}
	if rt := rep.ScanRouting(); rt.ScanRouted == 0 {
		t.Error("replica scans routed no sub-batches")
	}

	// Mutations on the replica must fail; the master stays writable.
	if _, err := rep.Exec(`CREATE TABLE nope (id BIGINT, PRIMARY KEY(id))`); err == nil {
		t.Fatal("DDL on a replica must fail")
	}
	if _, err := master.Exec(`CREATE TABLE extra (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}

	// A prepared partitioned scan stamps its LSN once, and it must
	// never pass the replica's visible LSN — including while the master
	// commits ahead of the replica's tail.
	for i := 0; i < 50; i++ {
		if _, err := master.Exec(fmt.Sprintf("INSERT INTO extra VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	ps, err := rep.Engine().PrepareNDPScan(engine.ScanOptions{
		Index: rdb.Lineitem.Primary,
		NDP:   &engine.NDPPush{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if visible := rep.ReplicaStats().VisibleLSN; ps.LSN() > visible {
		t.Fatalf("scan LSN %d beyond replica visible LSN %d", ps.LSN(), visible)
	}
	// And the scan actually runs at that snapshot. Emit callbacks run
	// concurrently, one partition each.
	var rows atomic.Int64
	if err := ps.Run(func(int) engine.EmitFunc {
		return func(types.Row, []core.AggState) error { rows.Add(1); return nil }
	}); err != nil {
		t.Fatal(err)
	}
	if rows.Load() == 0 {
		t.Error("partitioned scan emitted no rows")
	}
}

// TestParallelScanMatchesSerialOnMaster sweeps scan parallelism on one
// master and asserts identical results plus router activity.
func TestParallelScanMatchesSerialOnMaster(t *testing.T) {
	master, err := Open(Config{PagesPerSlice: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	mdb, err := tpch.Load(master.Engine(), 0.005)
	if err != nil {
		t.Fatal(err)
	}
	q6, err := tpch.QueryByName("Q6")
	if err != nil {
		t.Fatal(err)
	}
	routed0 := master.ScanRouting().ScanRouted
	for _, q := range []tpch.Query{q6, {Name: "Q1G", Build: tpch.Q1G}} {
		master.SetScanParallelism(1)
		want := runTPCH(t, mdb, master.Engine(), q)
		for _, par := range []int{2, 4, 8} {
			master.SetScanParallelism(par)
			got := runTPCH(t, mdb, master.Engine(), q)
			if len(got) != len(want) {
				t.Fatalf("%s par=%d: rows = %d, serial = %d", q.Name, par, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s par=%d row %d: %q != serial %q", q.Name, par, i, got[i], want[i])
				}
			}
		}
	}
	rt := master.ScanRouting()
	if rt.ScanRouted == routed0 {
		t.Error("scan sweep routed no sub-batches")
	}
	if !rt.LeastLoaded {
		t.Error("least-loaded routing should be the default")
	}
	// Routing off still returns correct results.
	master.SetScanRouting(false)
	master.SetScanParallelism(4)
	if got := runTPCH(t, mdb, master.Engine(), q6); len(got) != 1 {
		t.Fatalf("Q6 with round-robin routing returned %d rows", len(got))
	}
	if master.ScanRouting().LeastLoaded {
		t.Error("SetScanRouting(false) did not stick")
	}
}

// TestForcedTraceShowsScanFanOut forces a trace on an NDP-eligible
// COUNT(*) and asserts the fan-out is observable: an ndp.scan root with
// per-partition ndp.slice_scan children in the span tree, and
// scan.start/scan.finish events in the flight recorder.
func TestForcedTraceShowsScanFanOut(t *testing.T) {
	// Small slices so the table spans several of them (~15 leaf pages
	// over 4-page slices = 4 partitions).
	db, err := Open(Config{PagesPerSlice: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE big (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}
	for base := 0; base < 6000; base += 500 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO big VALUES ")
		for i := 0; i < 500; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d, %d)", base+i, (base+i)%97)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
	db.SetNDPPageThreshold(1)
	db.SetScanParallelism(4)
	// Loading warmed the pool; NDP only pays off (and is only chosen)
	// when the scan would actually do I/O.
	db.Engine().Pool().Clear()
	res, id, err := db.ExecTraced(`SELECT COUNT(*) FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("ExecTraced returned trace ID 0")
	}
	if len(res.Rows) != 1 {
		t.Fatalf("COUNT(*) returned %d rows", len(res.Rows))
	}
	spans := db.TraceSpans(id)
	var scanRoot, sliceScans int
	var rootID uint64
	for _, s := range spans {
		switch s.Name {
		case "ndp.scan":
			scanRoot++
			rootID = s.SpanID
		case "ndp.slice_scan":
			sliceScans++
		}
	}
	if scanRoot != 1 {
		t.Fatalf("ndp.scan spans = %d, want 1 (spans: %v)", scanRoot, spanNames(spans))
	}
	if sliceScans < 2 {
		t.Fatalf("ndp.slice_scan spans = %d, want >= 2 (multiple slices)", sliceScans)
	}
	// The per-slice spans hang under the scan root — the fan-out tree.
	for _, s := range spans {
		if s.Name == "ndp.slice_scan" && s.Parent != rootID {
			t.Errorf("ndp.slice_scan parent = %d, want ndp.scan %d", s.Parent, rootID)
		}
	}
	var sawStart, sawFinish bool
	for _, ev := range db.EventRing().Events() {
		switch ev.Kind {
		case "scan.start":
			sawStart = true
		case "scan.finish":
			sawFinish = true
		}
	}
	if !sawStart || !sawFinish {
		t.Errorf("flight recorder missing scan events (start=%v finish=%v)", sawStart, sawFinish)
	}
}

func spanNames(spans []obs.Span) []string {
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	return names
}
