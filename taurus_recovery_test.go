package taurus

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"taurus/internal/core"
	"taurus/internal/engine"
	"taurus/internal/logstore"
	"taurus/internal/types"
	"taurus/internal/wal"
)

// durableConfig is a small, fast deployment for recovery tests: tiny
// slices so data spreads across Page Stores, a tight group-commit
// window so each statement's flush returns quickly.
func durableConfig(dir string) Config {
	return Config{
		DataDir:          dir,
		PagesPerSlice:    4,
		LogFlushInterval: 200 * time.Microsecond,
		// The torn/corrupt-tail tests cut the LAST on-disk log entry
		// and reason about exactly which statement it carried; a pinned
		// window size keeps each small statement in one entry (the
		// adaptive threshold would split them unpredictably).
		WriteFlushThreshold: 256,
	}
}

func mustExec(t *testing.T, db *DB, q string) *Result {
	t.Helper()
	res, err := db.Exec(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

func countWorkers(t *testing.T, db *DB) int64 {
	t.Helper()
	res := mustExec(t, db, "SELECT COUNT(*) FROM worker")
	return res.Rows[0][0].I
}

func insertWorkers(t *testing.T, db *DB, from, n int) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("INSERT INTO worker VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, %d, DATE '2012-01-15', 3100.00, 'w%d')", from+i, 20+(from+i)%45, from+i)
	}
	mustExec(t, db, sb.String())
}

// TestKillAndReopen is the acceptance scenario: open on a DataDir,
// create + insert + query, drop the process state without Close (a
// crash), and reopen the same directory — every acknowledged
// transaction must be visible again.
func TestKillAndReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	insertWorkers(t, db, 0, 300)
	if got := countWorkers(t, db); got != 300 {
		t.Fatalf("pre-crash count = %d", got)
	}
	preLSN := db.DurableLSN()
	if preLSN == 0 {
		t.Fatal("nothing became durable")
	}
	// Crash: no Close, no flush — just drop every in-memory structure.
	db = nil

	db2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st := db2.RecoveryStats()
	if st.Tables != 1 || st.Records == 0 {
		t.Fatalf("recovery stats = %+v", st)
	}
	if db2.DurableLSN() < preLSN {
		t.Fatalf("durable LSN went backwards: %d -> %d", preLSN, db2.DurableLSN())
	}
	if got := countWorkers(t, db2); got != 300 {
		t.Fatalf("post-recovery count = %d, want 300", got)
	}
	// Row content survived, not just cardinality.
	res := mustExec(t, db2, "SELECT name, age FROM worker WHERE id = 142")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "w142" || res.Rows[0][1].I != 20+142%45 {
		t.Fatalf("row 142 = %v", res.Rows)
	}
	// Aggregation over recovered pages (exercises scans + NDP paths).
	db2.SetNDPPageThreshold(1)
	res = mustExec(t, db2, "SELECT COUNT(*) FROM worker WHERE age < 30")
	want := int64(0)
	for i := 0; i < 300; i++ {
		if 20+i%45 < 30 {
			want++
		}
	}
	if res.Rows[0][0].I != want {
		t.Fatalf("filtered count = %d, want %d", res.Rows[0][0].I, want)
	}
	// The database keeps working after recovery: new inserts, new LSNs.
	insertWorkers(t, db2, 300, 50)
	if got := countWorkers(t, db2); got != 350 {
		t.Fatalf("post-recovery insert count = %d", got)
	}

	// A second, clean restart sees both generations.
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got := countWorkers(t, db3); got != 350 {
		t.Fatalf("after clean restart count = %d", got)
	}
}

// lastSegments returns the newest segment file of every Log Store under
// dir.
func lastSegments(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	for _, log := range []string{"log1", "log2", "log3"} {
		segs, err := filepath.Glob(filepath.Join(dir, log, "*.seg"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no segments under %s/%s: %v", dir, log, err)
		}
		sort.Strings(segs)
		out = append(out, segs[len(segs)-1])
	}
	return out
}

// TestTornFinalRecordDiscarded cuts the final log entry in half on every
// Log Store replica — the on-disk state an interrupted append leaves
// behind — and verifies recovery drops exactly that batch and keeps
// everything before it.
func TestTornFinalRecordDiscarded(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	insertWorkers(t, db, 0, 200)  // batch 1: acknowledged
	insertWorkers(t, db, 200, 60) // batch 2: the one we tear
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop into the last entry of every replica's log.
	for _, seg := range lastSegments(t, dir) {
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, fi.Size()-7); err != nil {
			t.Fatal(err)
		}
	}
	db2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery must tolerate a torn tail: %v", err)
	}
	defer db2.Close()
	if got := countWorkers(t, db2); got != 200 {
		t.Fatalf("count after torn tail = %d, want 200 (batch 2 discarded)", got)
	}
	// The surviving prefix is fully usable.
	insertWorkers(t, db2, 200, 10)
	if got := countWorkers(t, db2); got != 210 {
		t.Fatalf("insert after torn recovery = %d", got)
	}
}

// TestCorruptFinalRecordDiscarded flips a byte inside the final entry —
// same detection path, via CRC mismatch instead of a short read.
func TestCorruptFinalRecordDiscarded(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	insertWorkers(t, db, 0, 150)
	insertWorkers(t, db, 150, 40)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for _, seg := range lastSegments(t, dir) {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-3] ^= 0xFF
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	db2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery must tolerate a corrupt tail record: %v", err)
	}
	defer db2.Close()
	if got := countWorkers(t, db2); got != 150 {
		t.Fatalf("count after CRC-corrupt tail = %d, want 150", got)
	}
}

// TestRecoveryAcrossSegments forces segment rotation so replay crosses
// sealed-segment boundaries.
func TestRecoveryAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.LogSegmentBytes = 4096
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	for b := 0; b < 10; b++ {
		insertWorkers(t, db, b*80, 80)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "log1", "*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	db2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := countWorkers(t, db2); got != 800 {
		t.Fatalf("count across segments = %d, want 800", got)
	}
}

// TestSecondaryIndexRecovery registers a secondary index through the
// typed engine API, crashes, and verifies the index is rebuilt and scans
// the same rows.
func TestSecondaryIndexRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	if _, err := db.Engine().CreateSecondaryIndex("worker", "worker_age", []int{1}); err != nil {
		t.Fatal(err)
	}
	insertWorkers(t, db, 0, 120)
	tblBefore, err := db.Engine().Table("worker")
	if err != nil {
		t.Fatal(err)
	}
	rootBefore := tblBefore.Secondaries[0].Tree.Root()
	// Crash without Close.
	db = nil

	db2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st := db2.RecoveryStats(); st.Indexes != 1 {
		t.Fatalf("recovery stats = %+v, want 1 secondary index", st)
	}
	tbl, err := db2.Engine().Table("worker")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Secondaries) != 1 || tbl.Secondaries[0].Name != "worker_age" {
		t.Fatalf("secondaries = %+v", tbl.Secondaries)
	}
	idx := tbl.Secondaries[0]
	if idx.Tree.Root() != rootBefore {
		t.Fatalf("secondary root %d != pre-crash %d", idx.Tree.Root(), rootBefore)
	}
	rows := 0
	err = db2.Engine().Scan(engine.ScanOptions{Index: idx}, func(row types.Row, _ []core.AggState) error {
		rows++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 120 {
		t.Fatalf("secondary index scan saw %d rows, want 120", rows)
	}
}

// TestEmptyDataDirIsFreshDatabase ensures DataDir on a new directory
// behaves exactly like an in-memory open.
func TestEmptyDataDirIsFreshDatabase(t *testing.T) {
	db, err := Open(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if st := db.RecoveryStats(); st.Records != 0 {
		t.Fatalf("fresh dir recovered %+v", st)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	insertWorkers(t, db, 0, 10)
	if got := countWorkers(t, db); got != 10 {
		t.Fatalf("count = %d", got)
	}
}

// TestInMemoryModeUnchanged pins the default: no DataDir, no files, no
// recovery — and Close is safe to call.
func TestInMemoryModeUnchanged(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	insertWorkers(t, db, 0, 5)
	if got := countWorkers(t, db); got != 5 {
		t.Fatalf("count = %d", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// catRec builds a TypeCatalog record (barrier or otherwise) for the
// torn-lane filter tests.
func barrierRec(lsn, voidFrom uint64) wal.Record {
	return wal.Record{
		Type: wal.TypeCatalog, LSN: lsn,
		Payload: (&wal.CatalogEntry{Kind: wal.CatalogBarrier, IndexID: voidFrom}).EncodeCatalog(nil),
	}
}

func dataRec(lsn uint64) wal.Record {
	return wal.Record{Type: wal.TypeCompact, LSN: lsn, PageID: 1}
}

func lsnsOf(recs []wal.Record) []uint64 {
	out := make([]uint64, len(recs))
	for i, r := range recs {
		out[i] = r.LSN
	}
	return out
}

// TestVoidTornLanes pins the non-prefix-log recovery filter: per-slice
// lanes can leave a later lane's window durable while an earlier lane's
// window was lost, and replay must drop that unacknowledged tail — but
// keep acknowledged records logged above a barrier-explained gap after
// a previous recovery.
func TestVoidTornLanes(t *testing.T) {
	eq := func(got []wal.Record, want ...uint64) {
		t.Helper()
		gotLSNs := lsnsOf(got)
		if len(gotLSNs) != len(want) {
			t.Fatalf("kept %v, want %v", gotLSNs, want)
		}
		for i := range want {
			if gotLSNs[i] != want[i] {
				t.Fatalf("kept %v, want %v", gotLSNs, want)
			}
		}
	}
	// Contiguous log: nothing voided.
	kept, from, voided := voidTornLanes([]wal.Record{dataRec(1), dataRec(2), dataRec(3)}, 0, true)
	if from != 0 || voided != 0 {
		t.Fatalf("contiguous log voided: from=%d n=%d", from, voided)
	}
	eq(kept, 1, 2, 3)
	// Freshly-torn tail: LSN 10 lost (other lane), 11 durable — drop 11.
	kept, from, voided = voidTornLanes([]wal.Record{dataRec(8), dataRec(9), dataRec(11)}, 7, true)
	if from != 10 || voided != 1 {
		t.Fatalf("torn tail: from=%d n=%d", from, voided)
	}
	eq(kept, 8, 9)
	// Next boot: a barrier at 12 explains [10,12); zombie 11 dropped,
	// new records 12.. (the barrier itself) and 13.. kept.
	kept, from, voided = voidTornLanes([]wal.Record{
		dataRec(8), dataRec(9), dataRec(11), barrierRec(12, 10), dataRec(13),
	}, 7, true)
	if from != 0 || voided != 1 {
		t.Fatalf("barrier epoch: from=%d n=%d", from, voided)
	}
	eq(kept, 8, 9, 12, 13)
	// A second tear above the explained epoch: 14 lost, 15 durable.
	kept, from, voided = voidTornLanes([]wal.Record{
		dataRec(9), dataRec(11), barrierRec(12, 10), dataRec(13), dataRec(15),
	}, 0, false)
	if from != 14 || voided != 2 {
		t.Fatalf("second tear: from=%d n=%d", from, voided)
	}
	eq(kept, 9, 12, 13)
	// Anchored with no checkpoint (fresh DB, GC impossible): a missing
	// LEADING window is a torn tail too.
	kept, from, voided = voidTornLanes([]wal.Record{dataRec(3), dataRec(4)}, 0, true)
	if from != 1 || voided != 2 {
		t.Fatalf("anchored leading gap: from=%d n=%d", from, voided)
	}
	eq(kept)
	// Unanchored (corrupt-meta fallback over a GC'd log): the same
	// leading gap is a collected prefix, not loss.
	kept, from, voided = voidTornLanes([]wal.Record{dataRec(3), dataRec(4)}, 0, false)
	if from != 0 || voided != 0 {
		t.Fatalf("unanchored leading prefix voided: from=%d n=%d", from, voided)
	}
	eq(kept, 3, 4)
}

// TestTornMultiLaneTailRecovery drives the whole loop at the DB level:
// a crash leaves the logs with a hole (an earlier lane's window lost)
// below durable later-lane records; reopen must void the unacknowledged
// tail, log a barrier, and a THIRD open must keep post-recovery commits
// while still dropping the zombies.
func TestTornMultiLaneTailRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	insertWorkers(t, db, 0, 50)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge the torn multi-lane state on every replica: append two
	// more windows whose LSNs skip a "lost" window in between. The
	// records above the hole were never acknowledged.
	for _, log := range []string{"log1", "log2", "log3"} {
		ls, err := logstore.Open(log, filepath.Join(dir, log))
		if err != nil {
			t.Fatal(err)
		}
		top := ls.DurableLSN()
		ghost := wal.Record{Type: wal.TypeCompact, LSN: top + 3, PageID: 1}
		if _, err := ls.Append(ghost.Encode(nil)); err != nil {
			t.Fatal(err)
		}
		if ls.PendingHoles() != 2 {
			t.Fatalf("%s pending holes = %d, want 2", log, ls.PendingHoles())
		}
		if err := ls.Close(); err != nil {
			t.Fatal(err)
		}
	}
	db2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery must tolerate a torn multi-lane tail: %v", err)
	}
	if got := countWorkers(t, db2); got != 50 {
		t.Fatalf("count after torn-lane tail = %d, want 50 (ghost tail voided)", got)
	}
	if v := db2.RecoverySummary().VoidedRecords; v != 1 {
		t.Fatalf("voided records = %d, want 1", v)
	}
	// Post-recovery commits land above the barrier...
	insertWorkers(t, db2, 50, 10)
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and survive the NEXT recovery even though the zombie gap is
	// still in the log below them.
	db3, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got := countWorkers(t, db3); got != 60 {
		t.Fatalf("count after second recovery = %d, want 60", got)
	}
}

// TestSiblingZombieAboveBestReplica covers the resume rule when one
// NON-best Log Store holds an unacknowledged lane window ABOVE the best
// replica's durable LSN: the allocator must resume above every
// replica's content (a fresh record reusing the zombie's LSN would be
// silently "deduplicated" by that store while still being acked), and
// the recovery barrier must void the zombie range so a later boot that
// picks the zombie-bearing store as best does not replay it.
func TestSiblingZombieAboveBestReplica(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	insertWorkers(t, db, 0, 40)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge the skewed crash state: log1 and log2 each accepted one
	// more contiguous lane window ([top+1, top+2]); log3 instead
	// accepted a LATER lane's window ([top+4]) and lost the others —
	// its durable LSN tops everyone while holding fewer records.
	var top uint64
	for i, log := range []string{"log1", "log2", "log3"} {
		ls, err := logstore.Open(log, filepath.Join(dir, log))
		if err != nil {
			t.Fatal(err)
		}
		top = ls.DurableLSN()
		var batch []byte
		if i < 2 {
			batch = (&wal.Record{Type: wal.TypeCompact, LSN: top + 1, PageID: 1}).Encode(nil)
			batch = (&wal.Record{Type: wal.TypeCompact, LSN: top + 2, PageID: 1}).Encode(batch)
		} else {
			batch = (&wal.Record{Type: wal.TypeCompact, LSN: top + 4, PageID: 1}).Encode(nil)
		}
		if _, err := ls.Append(batch); err != nil {
			t.Fatal(err)
		}
		if err := ls.Close(); err != nil {
			t.Fatal(err)
		}
	}
	db2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := countWorkers(t, db2); got != 40 {
		t.Fatalf("count after skewed crash = %d, want 40", got)
	}
	// New commits must allocate above the zombie (top+4), not collide
	// with it on log3.
	insertWorkers(t, db2, 40, 10)
	if lsn := db2.DurableLSN(); lsn <= top+4 {
		t.Fatalf("durable LSN %d did not resume above the sibling zombie %d", lsn, top+4)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	// The next boot may pick any replica as best; the barrier must keep
	// the new rows and drop the zombie either way.
	db3, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got := countWorkers(t, db3); got != 50 {
		t.Fatalf("count after second recovery = %d, want 50", got)
	}
}
