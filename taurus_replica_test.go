package taurus

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitReplicaCount polls a replica SELECT until it returns want rows (or
// the deadline passes), returning the last observed count. Replicas
// trail the master by the replication lag; tests bound it instead of
// assuming zero.
func waitReplicaCount(t *testing.T, rep *DB, query string, want int64, deadline time.Duration) int64 {
	t.Helper()
	var last int64 = -1
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		res, err := rep.Exec(query)
		if err != nil {
			t.Fatalf("replica query: %v", err)
		}
		last = res.Rows[0][0].I
		if last == want {
			return last
		}
		time.Sleep(2 * time.Millisecond)
	}
	return last
}

func TestReplicaServesReadsAndCatchesUp(t *testing.T) {
	master, err := Open(Config{PagesPerSlice: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	if _, err := master.Exec(`CREATE TABLE kv (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := master.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i%7)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := OpenReplica(Config{Master: master})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if !rep.IsReplica() || master.IsReplica() {
		t.Fatal("IsReplica misreports")
	}
	// The replica opened caught up: the pre-existing rows are visible.
	if got := waitReplicaCount(t, rep, "SELECT COUNT(*) FROM kv", 200, 5*time.Second); got != 200 {
		t.Fatalf("initial catch-up: count = %d, want 200", got)
	}
	// A commit on the master becomes visible after catch-up.
	for i := 200; i < 250; i++ {
		if _, err := master.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i%7)); err != nil {
			t.Fatal(err)
		}
	}
	if got := waitReplicaCount(t, rep, "SELECT COUNT(*) FROM kv", 250, 5*time.Second); got != 250 {
		t.Fatalf("post-write catch-up: count = %d, want 250", got)
	}
	// Predicated reads agree with the master (NDP path included).
	mres, err := master.Exec("SELECT COUNT(*) FROM kv WHERE v < 3")
	if err != nil {
		t.Fatal(err)
	}
	if got := waitReplicaCount(t, rep, "SELECT COUNT(*) FROM kv WHERE v < 3", mres.Rows[0][0].I, 5*time.Second); got != mres.Rows[0][0].I {
		t.Fatalf("predicate count = %d, master %d", got, mres.Rows[0][0].I)
	}
	st := rep.ReplicaStats()
	if st.VisibleLSN == 0 || st.RecordsTailed == 0 {
		t.Fatalf("replica stats not populated: %+v", st)
	}
	if !st.Subscribed || st.StreamBatches == 0 {
		t.Fatalf("replica is not consuming the push stream: %+v", st)
	}
	if master.WritePathStats().FrontierWatchers != 1 {
		t.Fatal("master does not report the replica's frontier watch")
	}
}

func TestReplicaRejectsDML(t *testing.T) {
	master, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	if _, err := master.Exec(`CREATE TABLE kv (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}
	rep, err := OpenReplica(Config{Master: master})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, err := rep.Exec("INSERT INTO kv VALUES (1, 1)"); err == nil {
		t.Fatal("INSERT on a replica must fail")
	}
	if _, err := rep.Exec("CREATE TABLE other (id BIGINT, PRIMARY KEY(id))"); err == nil {
		t.Fatal("CREATE TABLE on a replica must fail")
	}
	// And the master is unaffected.
	if _, err := master.Exec("INSERT INTO kv VALUES (1, 1)"); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaSeesDDLAfterOpen(t *testing.T) {
	master, err := Open(Config{PagesPerSlice: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	rep, err := OpenReplica(Config{Master: master})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	// DDL and rows arriving after the replica opened attach via the
	// tailed catalog records.
	if _, err := master.Exec(`CREATE TABLE late (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}
	const rows = 1500
	for i := 0; i < rows; i++ {
		if _, err := master.Exec(fmt.Sprintf("INSERT INTO late VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := waitReplicaCount(t, rep, "SELECT COUNT(*) FROM late", rows, 10*time.Second); got != rows {
		t.Fatalf("late table count = %d, want %d", got, rows)
	}
	if rep.ReplicaStats().TablesAttached == 0 {
		t.Fatal("no tables attached from the tail")
	}
	// Enough rows to split the master's root; the replica must have
	// followed the new root from the tailed FormatPage records.
	mt, err := master.Engine().Table("late")
	if err != nil {
		t.Fatal(err)
	}
	if mt.Primary.Tree.Height() < 2 {
		t.Fatalf("master tree never split (height %d); test needs more rows", mt.Primary.Tree.Height())
	}
	if rep.ReplicaStats().RootAdvances == 0 {
		t.Fatal("no root advances tailed (master trees split)")
	}
	rt, err := rep.Engine().Table("late")
	if err != nil {
		t.Fatal(err)
	}
	if rt.Primary.Tree.Root() != mt.Primary.Tree.Root() {
		t.Fatalf("replica root %d != master root %d", rt.Primary.Tree.Root(), mt.Primary.Tree.Root())
	}
}

// TestReplicaMonotonicAndDurableReads drives a continuous writer on the
// master while a replica reads: counts never decrease (monotonic reads
// across refreshes) and the replica's visible LSN never passes the
// master's durable watermark (a replica never observes a non-durable
// LSN).
func TestReplicaMonotonicAndDurableReads(t *testing.T) {
	master, err := Open(Config{PagesPerSlice: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	if _, err := master.Exec(`CREATE TABLE mono (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}
	rep, err := OpenReplica(Config{Master: master})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	stop := make(chan struct{})
	var writerErr error
	var wrote atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := master.Exec(fmt.Sprintf("INSERT INTO mono VALUES (%d, %d)", i, i)); err != nil {
				writerErr = err
				return
			}
			wrote.Add(1)
		}
	}()
	var last int64 = -1
	for i := 0; i < 200; i++ {
		res, err := rep.Exec("SELECT COUNT(*) FROM mono")
		if err != nil {
			t.Fatalf("replica read %d: %v", i, err)
		}
		n := res.Rows[0][0].I
		if n < last {
			t.Fatalf("non-monotonic read: %d after %d", n, last)
		}
		last = n
		// The replica must never see rows the master has not durably
		// committed: committed (durable) inserts are an upper bound.
		if committed := wrote.Load(); n > committed {
			t.Fatalf("replica count %d exceeds master committed %d", n, committed)
		}
		if vis, dur := rep.ReplicaStats().VisibleLSN, master.DurableLSN(); vis > dur {
			t.Fatalf("visible LSN %d beyond durable %d", vis, dur)
		}
	}
	close(stop)
	wg.Wait()
	if writerErr != nil {
		t.Fatal(writerErr)
	}
	// Final convergence.
	want := wrote.Load()
	if got := waitReplicaCount(t, rep, "SELECT COUNT(*) FROM mono", want, 10*time.Second); got != want {
		t.Fatalf("converged count = %d, want %d", got, want)
	}
}

// TestReplicaKillAndReopenMidCheckpoint opens a replica against a
// master that is continuously writing and checkpointing, kills it, and
// opens a fresh one mid-stream: the new replica bootstraps from the
// latest checkpoint meta plus the log tail and converges.
func TestReplicaKillAndReopenMidCheckpoint(t *testing.T) {
	dir, err := os.MkdirTemp("", "taurus-replica-ckpt-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	master, err := Open(Config{DataDir: dir, PagesPerSlice: 64, CheckpointInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	if _, err := master.Exec(`CREATE TABLE ck (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var writerErr error
	var wrote atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := master.Exec(fmt.Sprintf("INSERT INTO ck VALUES (%d, %d)", i, i)); err != nil {
				writerErr = err
				return
			}
			wrote.Add(1)
		}
	}()
	// First replica: verify it works, then kill it.
	rep, err := OpenReplica(Config{Master: master})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := rep.Exec("SELECT COUNT(*) FROM ck"); err != nil || len(res.Rows) != 1 {
		t.Fatalf("first replica read: %v", err)
	}
	rep.Close()
	// Let the master write and checkpoint some more, then open a fresh
	// replica mid-checkpoint-stream.
	time.Sleep(60 * time.Millisecond)
	rep2, err := OpenReplica(Config{Master: master})
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	if res, err := rep2.Exec("SELECT COUNT(*) FROM ck"); err != nil || len(res.Rows) != 1 {
		t.Fatalf("reopened replica read: %v", err)
	}
	close(stop)
	wg.Wait()
	if writerErr != nil {
		t.Fatal(writerErr)
	}
	want := wrote.Load()
	if got := waitReplicaCount(t, rep2, "SELECT COUNT(*) FROM ck", want, 10*time.Second); got != want {
		t.Fatalf("reopened replica converged at %d, want %d", got, want)
	}
	// The second replica bootstrapped from a checkpoint: its tail did
	// not start at LSN 0.
	if st := rep2.ReplicaStats(); st.VisibleLSN == 0 {
		t.Fatalf("reopened replica stats: %+v", st)
	}
}
