package taurus

import (
	"fmt"
	"sync"
	"testing"

	"taurus/internal/types"
)

// TestKillAndReopenWithInFlightWindow is the write-path crash test:
// concurrent committers push group-commit windows through the pipeline,
// the process "dies" with records staged in an unflushed window (never
// acknowledged), and a reopen must recover exactly the acknowledged
// transactions — nothing durable lost, the unacknowledged tail simply
// gone, replay idempotent.
func TestKillAndReopenWithInFlightWindow(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)

	// Concurrent committers: each statement is acknowledged only once
	// its records are durable in triplicate, so everything these
	// goroutines report as acked MUST survive the crash.
	const writers = 4
	const perWriter = 40
	var wg sync.WaitGroup
	acked := make([][]int, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := w*perWriter + i
				if _, err := db.Exec(fmt.Sprintf(
					"INSERT INTO worker VALUES (%d, %d, DATE '2012-01-15', 3100.00, 'w%d')",
					id, 20+id%45, id)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				acked[w] = append(acked[w], id)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	preLSN := db.DurableLSN()
	if preLSN == 0 {
		t.Fatal("nothing became durable")
	}

	// Leave an in-flight (staged, unsealed, unacknowledged) window in
	// the pipeline: engine-level inserts stage records but nobody
	// commits or flushes, so they sit below the flush threshold when
	// the "process" dies. They were never acknowledged, so recovery may
	// legitimately lose them — but must lose nothing else.
	eng := db.Engine()
	tbl, err := eng.Table("worker")
	if err != nil {
		t.Fatal(err)
	}
	tx := eng.Txm().Begin()
	const unacked = 5
	for i := 0; i < unacked; i++ {
		id := int64(writers*perWriter + i)
		row := types.Row{
			types.NewInt(id),
			types.NewInt(30),
			types.DateFromYMD(2012, 1, 15),
			types.NewDecimal(310000),
			types.NewString(fmt.Sprintf("ghost%d", id)),
		}
		if err := eng.Insert(tbl, tx, row); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.WritePathStats().PendingRecords; got == 0 {
		t.Fatal("expected staged records pending in the pipeline at crash time")
	}

	// Crash: no Close, no flush.
	db = nil

	db2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.DurableLSN() < preLSN {
		t.Fatalf("durable LSN went backwards: %d -> %d", preLSN, db2.DurableLSN())
	}
	got := countWorkers(t, db2)
	if got != writers*perWriter {
		t.Fatalf("recovered %d rows, want %d acked (unacked ghosts must not count)", got, writers*perWriter)
	}
	// Every acknowledged id is present with its content.
	for w := 0; w < writers; w++ {
		if len(acked[w]) != perWriter {
			t.Fatalf("writer %d acked %d statements", w, len(acked[w]))
		}
	}
	res := mustExec(t, db2, "SELECT COUNT(*) FROM worker WHERE name LIKE 'ghost%'")
	if res.Rows[0][0].I != 0 {
		t.Fatalf("%d unacknowledged rows resurrected", res.Rows[0][0].I)
	}
	res = mustExec(t, db2, fmt.Sprintf("SELECT name FROM worker WHERE id = %d", writers*perWriter-1))
	if len(res.Rows) != 1 || res.Rows[0][0].S != fmt.Sprintf("w%d", writers*perWriter-1) {
		t.Fatalf("last acked row = %v", res.Rows)
	}

	// The recovered database keeps committing through a fresh pipeline.
	insertWorkers(t, db2, writers*perWriter, 20)
	if got := countWorkers(t, db2); got != int64(writers*perWriter+20) {
		t.Fatalf("post-recovery count = %d", got)
	}

	// And a second crash+reopen is idempotent over the replayed log.
	preLSN2 := db2.DurableLSN()
	db2.Close()
	db3, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if db3.DurableLSN() < preLSN2 {
		t.Fatalf("durable LSN went backwards on second reopen: %d -> %d", preLSN2, db3.DurableLSN())
	}
	if got := countWorkers(t, db3); got != int64(writers*perWriter+20) {
		t.Fatalf("second recovery count = %d", got)
	}
}

// TestConcurrentCommitsVisibleAfterCleanRestart drives concurrent
// committers, closes cleanly (final checkpoint + drained pipeline), and
// verifies the restart sees every row — the pipelined write path must
// not change clean-shutdown semantics.
func TestConcurrentCommitsVisibleAfterCleanRestart(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := w*25 + i
				if _, err := db.Exec(fmt.Sprintf(
					"INSERT INTO worker VALUES (%d, %d, DATE '2012-01-15', 3100.00, 'w%d')",
					id, 20+id%45, id)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	st := db.WritePathStats()
	if st.WindowsFlushed == 0 {
		t.Fatalf("no group-commit windows flushed: %+v", st)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := countWorkers(t, db2); got != 100 {
		t.Fatalf("restart count = %d, want 100", got)
	}
}

// TestKillAndReopenWithHotLaneWindow is the per-slice-lane variant of
// the crash test: traffic concentrated on one slice promotes it to a
// dedicated write lane, the process "dies" with unacknowledged records
// staged in that hot lane, and a reopen must recover exactly the
// acknowledged statements — promotion must not change crash semantics.
func TestKillAndReopenWithHotLaneWindow(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.WriteFlushThreshold = 0 // adaptive threshold, lanes at defaults
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
		salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
	// Sequential inserts concentrate on the rightmost leaf's slice —
	// exactly the hot-slice pattern the promotion policy looks for.
	const acked = 160
	for from := 0; from < acked; from += 20 {
		insertWorkers(t, db, from, 20)
	}
	st := db.WritePathStats()
	if st.Promotions == 0 {
		t.Fatalf("no slice was promoted to a dedicated lane: %+v", st)
	}
	preLSN := db.DurableLSN()

	// Stage unacknowledged records (no commit, no flush): with the
	// table's pages hot, these sit in the promoted lane's staging
	// buffer when the "process" dies.
	eng := db.Engine()
	tbl, err := eng.Table("worker")
	if err != nil {
		t.Fatal(err)
	}
	tx := eng.Txm().Begin()
	for i := 0; i < 5; i++ {
		id := int64(acked + i)
		row := types.Row{
			types.NewInt(id), types.NewInt(30),
			types.DateFromYMD(2012, 1, 15),
			types.NewDecimal(310000),
			types.NewString(fmt.Sprintf("ghost%d", id)),
		}
		if err := eng.Insert(tbl, tx, row); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.WritePathStats().PendingRecords; got == 0 {
		t.Fatal("expected staged records pending at crash time")
	}

	// Crash: no Close, no flush.
	db = nil

	db2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.DurableLSN() < preLSN {
		t.Fatalf("durable LSN went backwards: %d -> %d", preLSN, db2.DurableLSN())
	}
	if got := countWorkers(t, db2); got != acked {
		t.Fatalf("recovered %d rows, want %d acked", got, acked)
	}
	res := mustExec(t, db2, "SELECT COUNT(*) FROM worker WHERE name LIKE 'ghost%'")
	if res.Rows[0][0].I != 0 {
		t.Fatalf("%d unacknowledged hot-lane rows resurrected", res.Rows[0][0].I)
	}
	// The recovered database keeps committing (and can promote again).
	insertWorkers(t, db2, acked, 20)
	if got := countWorkers(t, db2); got != acked+20 {
		t.Fatalf("post-recovery count = %d", got)
	}
}
