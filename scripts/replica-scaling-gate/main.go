// Command replica-scaling-gate is the CI gate for push-based replica
// fan-out: it runs the in-process replica bench at 1, 2, and 4 replicas
// and fails if attaching replicas stops scaling reads (read_scaling_2x
// < the threshold) or drags down the master's write throughput (write
// QPS at the largest level below the allowed fraction of the 1-replica
// baseline). It also fails outright — on any machine — if the replicas
// fell back to pull tailing: steady-state MsgLogRead/MsgSliceLSN
// polling is the regression this gate exists to catch.
//
// Scaling assertions are meaningless without parallelism, so on a
// single-CPU runner (runtime.NumCPU() < 2) the bench still runs as a
// smoke test but the thresholds are reported and skipped.
//
//	go run ./scripts/replica-scaling-gate
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"taurus/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("replica-scaling-gate: ")
	duration := flag.Duration("duration", 2*time.Second, "measured write/read window per replica level")
	minScaling2x := flag.Float64("min-read-scaling-2x", 1.7, "minimum read QPS ratio going 1 -> 2 replicas")
	minWriteRatio := flag.Float64("min-write-ratio", 0.9, "minimum master write QPS at the largest level as a fraction of the 1-replica baseline")
	flag.Parse()

	rows, err := bench.Replicas(*duration, []int{1, 2, 4}, 0)
	if err != nil {
		log.Fatalf("bench failed: %v", err)
	}
	bench.PrintReplicas(os.Stdout, rows)
	rep := bench.BuildReplicasReport(rows)

	// The tentpole invariant holds on any hardware: subscribed replicas
	// must not poll the stores in steady state.
	failed := false
	for _, r := range rows {
		if r.LogReadPerSec > 1 || r.SliceLSNPerSec > 1 {
			log.Printf("FAIL: %d replicas still pull-tailing (log_read %.1f/s, slice_lsn %.1f/s) — push subscription not engaged",
				r.Replicas, r.LogReadPerSec, r.SliceLSNPerSec)
			failed = true
		}
		if r.StreamBatches == 0 {
			log.Printf("FAIL: %d replicas consumed zero pushed batches", r.Replicas)
			failed = true
		}
	}

	var base, last bench.ReplicaRow
	for _, r := range rows {
		if r.Replicas == 1 {
			base = r
		}
		last = r
	}
	writeRatio := 0.0
	if base.WriteQPS > 0 {
		writeRatio = last.WriteQPS / base.WriteQPS
	}
	fmt.Printf("gate: read_scaling_2x=%.2f (min %.2f), write ratio at %d replicas=%.2f (min %.2f)\n",
		rep.ReadScaling2x, *minScaling2x, last.Replicas, writeRatio, *minWriteRatio)

	if runtime.NumCPU() < 2 {
		fmt.Printf("gate: NumCPU=%d — scaling thresholds skipped (need parallelism to be meaningful)\n", runtime.NumCPU())
	} else {
		if rep.ReadScaling2x < *minScaling2x {
			log.Printf("FAIL: read_scaling_2x %.2f < %.2f", rep.ReadScaling2x, *minScaling2x)
			failed = true
		}
		if writeRatio < *minWriteRatio {
			log.Printf("FAIL: master write QPS ratio %.2f < %.2f at %d replicas", writeRatio, *minWriteRatio, last.Replicas)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("gate: ok")
}
