// Command metrics-smoke is the CI gate for the observability surface:
// it starts a taurus-server frontend with a -stats-addr, drives a few
// statements through POST /query — one under a forced distributed trace
// — scrapes GET /metrics, and fails on a malformed Prometheus
// exposition, a missing core metric family, a /trace/<id> tree that
// does not span multiple node roles, or an empty /events flight
// recorder. It also checks GET /stats still parses as JSON.
//
//	go build -o /tmp/taurus-server ./cmd/taurus-server
//	go run ./scripts/metrics-smoke -server /tmp/taurus-server
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	"taurus/internal/obs"
)

// coreFamilies must all appear on a frontend's /metrics after a write
// and a read: one family per instrumented tier.
var coreFamilies = []string{
	"taurus_writepath_stage_seconds",
	"taurus_rpc_requests_total",
	"taurus_rpc_latency_seconds",
	"taurus_buffer_hits_total",
	"taurus_buffer_misses_total",
	"taurus_sal_durable_lsn",
	"taurus_logstore_durable_lsn",
	"taurus_logstore_append_seconds",
	"taurus_pagestore_records_applied_total",
	"taurus_pagestore_apply_seconds",
	"taurus_engine_rows_emitted_total",
	"taurus_slow_ops_fired_total",
}

func main() {
	server := flag.String("server", "taurus-server", "path to the taurus-server binary")
	listen := flag.String("listen", "127.0.0.1:17290", "frontend query address")
	statsAddr := flag.String("stats-addr", "127.0.0.1:17291", "frontend stats address")
	timeout := flag.Duration("timeout", 15*time.Second, "startup deadline")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("metrics-smoke: ")

	cmd := exec.Command(*server, "-role", "frontend", "-listen", *listen, "-stats-addr", *statsAddr)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatalf("starting %s: %v", *server, err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	if err := run(*listen, *statsAddr, *timeout); err != nil {
		log.Fatal(err)
	}
	log.Printf("ok: /metrics valid with all %d core families, /stats parses", len(coreFamilies))
}

func run(listen, statsAddr string, timeout time.Duration) error {
	queryURL := "http://" + listen + "/query"
	if err := waitUp(queryURL, timeout); err != nil {
		return err
	}
	for _, stmt := range []string{
		`CREATE TABLE smoke (id BIGINT, v INT, PRIMARY KEY(id))`,
		`INSERT INTO smoke VALUES (1, 10), (2, 20), (3, 30)`,
		`SELECT SUM(v) FROM smoke WHERE id > 0`,
	} {
		resp, err := http.Post(queryURL, "text/plain", strings.NewReader(stmt))
		if err != nil {
			return fmt.Errorf("POST /query: %w", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /query %q: %d: %s", stmt, resp.StatusCode, body)
		}
	}

	if err := checkTrace(queryURL, statsAddr); err != nil {
		return err
	}
	if err := checkEvents(statsAddr); err != nil {
		return err
	}

	text, err := fetch("http://" + statsAddr + "/metrics")
	if err != nil {
		return err
	}
	families, err := obs.ValidateExposition(text)
	if err != nil {
		return fmt.Errorf("malformed /metrics exposition: %w", err)
	}
	var missing []string
	for _, f := range coreFamilies {
		if _, ok := families[f]; !ok {
			missing = append(missing, f)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("/metrics missing core families: %s", strings.Join(missing, ", "))
	}

	stats, err := fetch("http://" + statsAddr + "/stats")
	if err != nil {
		return err
	}
	var payload map[string]any
	if err := json.Unmarshal([]byte(stats), &payload); err != nil {
		return fmt.Errorf("/stats is not valid JSON: %w", err)
	}
	if _, ok := payload["WritePath"]; !ok {
		return fmt.Errorf("/stats lost its WritePath section")
	}
	return nil
}

// checkTrace drives one INSERT under a forced trace (X-Taurus-Trace
// request header) and asserts GET /trace/<id> returns an assembled span
// tree covering at least three node roles: the frontend's SAL stages, a
// Log Store append, and a Page Store apply.
func checkTrace(queryURL, statsAddr string) error {
	req, err := http.NewRequest(http.MethodPost, queryURL,
		strings.NewReader(`INSERT INTO smoke VALUES (4, 40)`))
	if err != nil {
		return err
	}
	req.Header.Set("X-Taurus-Trace", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("traced POST /query: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("traced POST /query: %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Taurus-Trace")
	if id == "" {
		return fmt.Errorf("traced POST /query returned no X-Taurus-Trace header")
	}
	// The apply fan-out is asynchronous; poll briefly for the Page Store
	// spans to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		raw, err := fetch("http://" + statsAddr + "/trace/" + id)
		if err != nil {
			return err
		}
		spans, err := obs.SpansFromJSON([]byte(raw))
		if err != nil {
			return fmt.Errorf("/trace/%s: %w", id, err)
		}
		roles := map[string]bool{}
		for _, s := range spans {
			switch {
			case s.Node == "frontend":
				roles["frontend"] = true
			case strings.HasPrefix(s.Node, "log"):
				roles["logstore"] = true
			case strings.HasPrefix(s.Node, "pagestore"):
				roles["pagestore"] = true
			}
		}
		if len(roles) >= 3 {
			if roots := obs.AssembleTrace(spans); len(roots) != 1 {
				return fmt.Errorf("/trace/%s: %d roots, want one statement tree", id, len(roots))
			}
			log.Printf("trace %s: %d spans across %d roles", id, len(spans), len(roles))
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("/trace/%s covers roles %v, want frontend+logstore+pagestore", id, roles)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// checkEvents asserts the flight recorder captured structural events
// (the inserts above must have sealed at least one window).
func checkEvents(statsAddr string) error {
	raw, err := fetch("http://" + statsAddr + "/events")
	if err != nil {
		return err
	}
	var events []obs.Event
	if err := json.Unmarshal([]byte(raw), &events); err != nil {
		return fmt.Errorf("/events is not valid JSON: %w", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("/events is empty after writes")
	}
	for _, ev := range events {
		if ev.Kind == obs.EventWindowSeal {
			return nil
		}
	}
	return fmt.Errorf("/events has no %s event after writes", obs.EventWindowSeal)
}

// waitUp polls until the server answers HTTP (any status).
func waitUp(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not up after %s: %v", timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fetch(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return string(body), nil
}
