// Command health-smoke is the CI gate for the cluster health layer. It
// boots a small fleet as separate processes — a frontend (with an
// embedded read replica), a standalone Log Store, and a standalone Page
// Store, with the frontend heartbeating both over TCP via -peers — and
// then asserts the two properties the health subsystem promises:
//
//  1. Steady state is quiet: during a -steady write run, every check on
//     every node stays OK, every peer stays Alive, and taurus-doctor
//     exits zero. A health layer that cries wolf under normal load is
//     worse than none.
//
//  2. Hangs are failures too: a SIGSTOPped Log Store — alive at the
//     TCP level, answering nothing — must fold to Suspect/Dead on the
//     same deadlines, without dragging the healthy Page Store down
//     with it (a hung peer must not starve the pinger loop), and must
//     revive to Alive on SIGCONT.
//
//  3. Real failures are loud, fast: after SIGKILLing the Page Store,
//     /cluster/health must show the peer Suspect within the suspect
//     threshold (plus scheduling slop) and Dead within twice it, and
//     taurus-doctor must exit non-zero.
//
//     go build -o /tmp/taurus-server ./cmd/taurus-server
//     go build -o /tmp/taurus-doctor ./cmd/taurus-doctor
//     go run ./scripts/health-smoke -server /tmp/taurus-server -doctor /tmp/taurus-doctor -steady 60s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"taurus/internal/health"
)

const (
	feQuery   = "127.0.0.1:17440"
	feStats   = "127.0.0.1:17441"
	lsCluster = "127.0.0.1:17450"
	lsStats   = "127.0.0.1:17451"
	psCluster = "127.0.0.1:17460"
	psStats   = "127.0.0.1:17461"

	heartbeat = 100 * time.Millisecond
	suspect   = 1 * time.Second
)

func main() {
	server := flag.String("server", "taurus-server", "path to the taurus-server binary")
	doctor := flag.String("doctor", "taurus-doctor", "path to the taurus-doctor binary")
	steady := flag.Duration("steady", 60*time.Second, "healthy write-run duration before the kill phase")
	timeout := flag.Duration("timeout", 20*time.Second, "startup deadline per process")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("health-smoke: ")

	ls := start(*server, "logstore", "-role", "logstore", "-name", "log-tcp",
		"-listen", lsCluster, "-stats-addr", lsStats)
	defer stop(ls)
	ps := start(*server, "pagestore", "-role", "pagestore", "-name", "ps-tcp",
		"-listen", psCluster, "-stats-addr", psStats)
	defer stop(ps)
	fe := start(*server, "frontend", "-role", "frontend",
		"-listen", feQuery, "-stats-addr", feStats, "-replicas", "1",
		"-peers", fmt.Sprintf("logstore=%s,pagestore=%s", lsCluster, psCluster),
		"-heartbeat-interval", heartbeat.String(),
		"-suspect-threshold", suspect.String())
	defer stop(fe)

	for _, addr := range []string{lsStats, psStats, feStats} {
		if err := waitUp("http://"+addr+"/healthz", *timeout); err != nil {
			log.Fatal(err)
		}
	}
	if err := waitUp("http://"+feQuery+"/query", *timeout); err != nil {
		log.Fatal(err)
	}

	if err := steadyPhase(*doctor, *steady); err != nil {
		log.Fatalf("steady phase: %v", err)
	}
	log.Printf("steady phase ok: %s of writes with zero non-OK checks", *steady)

	if err := stallPhase(ls); err != nil {
		log.Fatalf("stall phase: %v", err)
	}
	log.Printf("stall phase ok: hung logstore folded and revived, pagestore untouched")

	if err := killPhase(*doctor, ps); err != nil {
		log.Fatalf("kill phase: %v", err)
	}
	log.Printf("kill phase ok: pagestore death detected within the deadline, doctor non-zero")
}

func start(bin, label string, args ...string) *exec.Cmd {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatalf("starting %s: %v", label, err)
	}
	log.Printf("started %s (pid %d)", label, cmd.Process.Pid)
	return cmd
}

func stop(cmd *exec.Cmd) {
	if cmd.Process != nil {
		cmd.Process.Kill()
		cmd.Wait()
	}
}

// steadyPhase drives INSERTs through the frontend for the whole window
// while polling /cluster/health: any non-OK check on any node, any
// non-Alive peer, or a degraded pong fails the gate. The doctor must
// agree (exit 0) at the end.
func steadyPhase(doctor string, d time.Duration) error {
	if err := post(`CREATE TABLE smoke (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		return err
	}
	// Let the first heartbeat rounds land before holding the fleet to
	// the zero-non-OK bar.
	time.Sleep(5 * heartbeat)
	deadline := time.Now().Add(d)
	id := 0
	nextPoll := time.Now()
	for time.Now().Before(deadline) {
		id++
		if err := post(fmt.Sprintf(`INSERT INTO smoke VALUES (%d, %d)`, id, id*10)); err != nil {
			return err
		}
		if time.Now().After(nextPoll) {
			nextPoll = time.Now().Add(500 * time.Millisecond)
			if err := assertAllHealthy(); err != nil {
				return err
			}
		}
	}
	if err := assertAllHealthy(); err != nil {
		return err
	}
	out, err := runDoctor(doctor)
	if err != nil {
		return fmt.Errorf("doctor failed on a healthy fleet:\n%s\n%v", out, err)
	}
	return nil
}

// assertAllHealthy checks /cluster/health plus each standalone node's
// own report: everything OK, everyone Alive.
func assertAllHealthy() error {
	var view health.ClusterView
	if err := fetchJSON("http://"+feStats+"/cluster/health", &view); err != nil {
		return err
	}
	if w := view.Worst(); w != health.StatusOK {
		return fmt.Errorf("/cluster/health folds to %v during steady run: %s", w, describe(view))
	}
	for _, p := range view.Peers {
		if p.State != health.PeerAlive {
			return fmt.Errorf("peer %s is %v during steady run", p.Name, p.State)
		}
	}
	for _, addr := range []string{lsStats, psStats} {
		var rep health.Report
		if err := fetchJSON("http://"+addr+"/health", &rep); err != nil {
			return err
		}
		if rep.Worst() != health.StatusOK || !rep.Ready {
			return fmt.Errorf("node %s not OK/ready during steady run: %+v", rep.Node, rep.Checks)
		}
	}
	return nil
}

// stallPhase SIGSTOPs the Log Store — the black-hole failure mode: TCP
// connections still complete, nothing ever answers — and holds the
// detector to the same Suspect/Dead deadlines as a clean kill. While
// the stall lasts, the healthy Page Store must stay Alive: a hung peer
// starving the pinger loop (so every peer's silence grows and the whole
// fleet folds) is exactly the regression this phase exists to catch.
// On SIGCONT the Log Store must revive to Alive.
func stallPhase(ls *exec.Cmd) error {
	if err := ls.Process.Signal(syscall.SIGSTOP); err != nil {
		return fmt.Errorf("stopping logstore: %v", err)
	}
	stoppedAt := time.Now()
	log.Printf("SIGSTOPped logstore (pid %d)", ls.Process.Pid)

	slop := 3 * time.Second
	if err := waitPeerState(lsCluster, health.PeerSuspect, stoppedAt, suspect+slop); err != nil {
		return err
	}
	log.Printf("logstore Suspect after %s", time.Since(stoppedAt).Round(time.Millisecond))
	if err := waitPeerState(lsCluster, health.PeerDead, stoppedAt, 2*suspect+slop); err != nil {
		return err
	}
	log.Printf("logstore Dead after %s", time.Since(stoppedAt).Round(time.Millisecond))

	// The stall has now lasted past 2x the suspect threshold. Had the
	// hung peer stalled the pinger, the pagestore would have accrued
	// the same silence and folded with it.
	var view health.ClusterView
	if err := fetchJSON("http://"+feStats+"/cluster/health", &view); err != nil {
		return err
	}
	for _, p := range view.Peers {
		if p.Name == psCluster && p.State != health.PeerAlive {
			return fmt.Errorf("healthy pagestore folded to %v while the logstore was stalled", p.State)
		}
	}

	if err := ls.Process.Signal(syscall.SIGCONT); err != nil {
		return fmt.Errorf("resuming logstore: %v", err)
	}
	contAt := time.Now()
	for time.Since(contAt) < suspect+slop {
		if err := fetchJSON("http://"+feStats+"/cluster/health", &view); err != nil {
			return err
		}
		for _, p := range view.Peers {
			if p.Name == lsCluster && p.State == health.PeerAlive {
				log.Printf("logstore Alive again %s after SIGCONT", time.Since(contAt).Round(time.Millisecond))
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("logstore did not revive within %s of SIGCONT", suspect+slop)
}

// killPhase SIGKILLs the Page Store and holds the detector to its
// contract: Suspect within the suspect threshold, Dead within twice it
// (each with slop for heartbeat rounding and scheduling), and a
// non-zero doctor.
func killPhase(doctor string, ps *exec.Cmd) error {
	if err := ps.Process.Kill(); err != nil {
		return fmt.Errorf("killing pagestore: %v", err)
	}
	ps.Wait()
	killedAt := time.Now()
	log.Printf("killed pagestore (pid %d)", ps.Process.Pid)

	slop := 3 * time.Second
	if err := waitPeerState(psCluster, health.PeerSuspect, killedAt, suspect+slop); err != nil {
		return err
	}
	log.Printf("pagestore Suspect after %s", time.Since(killedAt).Round(time.Millisecond))
	if err := waitPeerState(psCluster, health.PeerDead, killedAt, 2*suspect+slop); err != nil {
		return err
	}
	log.Printf("pagestore Dead after %s", time.Since(killedAt).Round(time.Millisecond))

	// The fold must be critical now, and /cluster/health must say so
	// with its status code too.
	resp, err := http.Get("http://" + feStats + "/cluster/health")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("/cluster/health = %d with a dead peer, want 503", resp.StatusCode)
	}

	out, err := runDoctor(doctor)
	if err == nil {
		return fmt.Errorf("doctor exited zero with a dead pagestore:\n%s", out)
	}
	if exit, ok := err.(*exec.ExitError); !ok || exit.ExitCode() == 0 {
		return fmt.Errorf("doctor did not fail cleanly: %v\n%s", err, out)
	}
	if !strings.Contains(out, "dead") {
		return fmt.Errorf("doctor output does not show the dead peer:\n%s", out)
	}
	return nil
}

func waitPeerState(peer string, want health.PeerState, since time.Time, within time.Duration) error {
	for time.Since(since) < within {
		var view health.ClusterView
		if err := fetchJSON("http://"+feStats+"/cluster/health", &view); err != nil {
			return err
		}
		for _, p := range view.Peers {
			if p.Name == peer && p.State >= want {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("peer %s not %v within %s of the kill", peer, want, within)
}

// runDoctor runs the doctor against the whole fleet: the frontend's
// cluster view plus each standalone node's own report.
func runDoctor(doctor string) (string, error) {
	cmd := exec.Command(doctor, "-cluster", feStats, lsStats, psStats)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func describe(v health.ClusterView) string {
	var b strings.Builder
	for _, c := range v.Self.Checks {
		if c.Status != health.StatusOK {
			fmt.Fprintf(&b, " self:%s=%s(%s)", c.Name, c.Status, c.Detail)
		}
	}
	for _, p := range v.Peers {
		if p.State != health.PeerAlive || p.PingStatus != health.StatusOK {
			fmt.Fprintf(&b, " peer:%s=%s/%s", p.Name, p.State, p.PingStatus)
		}
		if p.Report != nil {
			for _, c := range p.Report.Checks {
				if c.Status != health.StatusOK {
					fmt.Fprintf(&b, " %s:%s=%s(%s)", p.Name, c.Name, c.Status, c.Detail)
				}
			}
		}
	}
	if b.Len() == 0 {
		return "(no non-OK detail)"
	}
	return b.String()
}

func post(stmt string) error {
	resp, err := http.Post("http://"+feQuery+"/query", "text/plain", strings.NewReader(stmt))
	if err != nil {
		return fmt.Errorf("POST /query: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /query %q: %d: %s", stmt, resp.StatusCode, body)
	}
	return nil
}

func fetchJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}

// waitUp polls until the server answers HTTP (any status).
func waitUp(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not up after %s: %v", timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
