// Command analytics-gate is the CI gate for the parallel NDP scan
// scheduler: it runs the analytics sweep at parallelism 1 and NumCPU
// and fails if
//
//   - any cell of a query produced a different result than the others
//     (the parallel cross-partition merge must equal serial execution —
//     asserted on every machine, single-CPU included), or
//
//   - parallel Q6 is not at least the threshold factor faster than
//     serial Q6 (routing on, best-of-runs; asserted only when
//     runtime.NumCPU() >= 2, because a single-CPU runner has no
//     parallelism to win from).
//
//     go run ./scripts/analytics-gate
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"taurus/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analytics-gate: ")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	runs := flag.Int("runs", 3, "cold-pool runs per cell")
	minSpeedup := flag.Float64("min-speedup", 1.5, "minimum parallel Q6 speedup over serial (NumCPU >= 2 only)")
	flag.Parse()

	levels := []int{1}
	if n := runtime.NumCPU(); n >= 2 {
		levels = append(levels, n)
	} else {
		// Still exercise the fan-out machinery, just without a
		// parallelism win to assert on.
		levels = append(levels, 2)
	}
	rep, err := bench.Analytics(*sf, *runs, levels, 400*time.Millisecond)
	if err != nil {
		log.Fatalf("bench failed: %v", err)
	}
	bench.PrintAnalytics(os.Stdout, rep)

	failed := false
	// Correctness holds on any hardware: every (parallelism, routing)
	// cell of a query must return byte-identical results.
	if !rep.ResultsIdentical {
		log.Print("FAIL: parallel results differ from serial — cross-partition merge is wrong")
		failed = true
	}
	// Routed sub-batches must actually flow through the router.
	var routed uint64
	for _, r := range rep.Rows {
		routed += r.ScanRouted
	}
	if routed == 0 {
		log.Print("FAIL: no sub-batches were routed — fan-out path not engaged")
		failed = true
	}

	// Speedup: parallel Q6 with least-loaded routing vs serial.
	best := 0.0
	for _, r := range rep.Rows {
		if r.Query == "Q6" && r.Routing && r.Parallelism > 1 && r.Speedup > best {
			best = r.Speedup
		}
	}
	fmt.Printf("gate: parallel Q6 speedup=%.2fx (min %.2fx), results identical=%v\n",
		best, *minSpeedup, rep.ResultsIdentical)
	if runtime.NumCPU() < 2 {
		fmt.Printf("gate: NumCPU=%d — speedup threshold skipped (no parallelism to win from)\n",
			runtime.NumCPU())
	} else if best < *minSpeedup {
		log.Printf("FAIL: parallel Q6 speedup %.2fx < %.2fx", best, *minSpeedup)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("analytics gate passed")
}
