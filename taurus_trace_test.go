package taurus

import (
	"strings"
	"testing"
	"time"

	"taurus/internal/obs"
)

// TestExecTracedAssemblesCrossNodeTree is the PR's acceptance check in
// embedded form: one INSERT under a forced trace must yield an assembled
// tree with spans from at least three node roles — the frontend's SAL
// stages, a Log Store append span, and a Page Store apply span.
func TestExecTracedAssemblesCrossNodeTree(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE w (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}
	res, id, err := db.ExecTraced(`INSERT INTO w VALUES (1, 10)`)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("ExecTraced returned trace ID 0")
	}
	if res.Message != "1 rows inserted" {
		t.Fatalf("result = %q", res.Message)
	}
	// The apply fan-out is asynchronous; barrier so its spans have ended.
	if err := db.Engine().SAL().Barrier(); err != nil {
		t.Fatal(err)
	}
	spans := db.TraceSpans(id)
	names := map[string]bool{}
	roles := map[string]bool{}
	for _, s := range spans {
		names[s.Name] = true
		roles[s.Node] = true
	}
	for _, want := range []string{"sal.window", "rpc:MsgLogAppend", "logstore.append", "sal.apply", "pagestore.apply"} {
		if !names[want] {
			t.Errorf("missing span %q (got %v)", want, names)
		}
	}
	roleKinds := map[string]bool{}
	for r := range roles {
		switch {
		case r == "frontend":
			roleKinds["frontend"] = true
		case strings.HasPrefix(r, "log"):
			roleKinds["logstore"] = true
		case strings.HasPrefix(r, "pagestore"):
			roleKinds["pagestore"] = true
		}
	}
	if len(roleKinds) < 3 {
		t.Fatalf("spans from %v, want frontend + logstore + pagestore", roles)
	}
	// The tree assembles under the single statement root.
	roots := AssembleForTest(spans)
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1:\n%s", len(roots), obs.FormatTrace(roots))
	}
	if !strings.HasPrefix(roots[0].Span.Name, "sql:") {
		t.Errorf("root span = %q, want sql statement", roots[0].Span.Name)
	}
	if len(db.RecentTraces(4)) == 0 {
		t.Error("RecentTraces is empty after a forced trace")
	}
}

// AssembleForTest keeps the test readable without re-exporting.
func AssembleForTest(spans []obs.Span) []*obs.TraceNode { return obs.AssembleTrace(spans) }

// TestTraceSampleRateZeroCollectsNothing checks the default is free:
// without forcing, no spans are collected anywhere.
func TestTraceSampleRateZeroCollectsNothing(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE w (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO w VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	if ids := db.RecentTraces(8); len(ids) != 0 {
		t.Errorf("sample-rate 0 recorded traces: %v", ids)
	}
}

// TestTraceSampleRateOneSamplesEveryStatement checks rate-based
// sampling through the public Exec path.
func TestTraceSampleRateOneSamplesEveryStatement(t *testing.T) {
	db, err := Open(Config{TraceSampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE w (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO w VALUES (1, 10)`); err != nil {
		t.Fatal(err)
	}
	ids := db.RecentTraces(8)
	if len(ids) != 2 {
		t.Fatalf("RecentTraces = %v, want 2 sampled statements", ids)
	}
	// The newest (INSERT) trace reaches the Log Stores.
	spans := db.TraceSpans(ids[0])
	found := false
	for _, s := range spans {
		if s.Name == "logstore.append" {
			found = true
		}
	}
	if !found {
		t.Errorf("sampled INSERT has no logstore.append span: %+v", spans)
	}
}

// TestFlightRecorderCapturesWriteLifecycle checks structural events
// (window seals, checkpoints, log GC) land in the ring.
func TestFlightRecorderCapturesWriteLifecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{DataDir: dir, PagesPerSlice: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE w (id BIGINT, v INT, PRIMARY KEY(id))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := db.Exec(`INSERT INTO w VALUES (` + itoa(i) + `, 1)`); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.TruncateLogs(); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range db.Events() {
		kinds[ev.Kind]++
		if ev.Seq == 0 || ev.Time.IsZero() || ev.Detail == "" {
			t.Errorf("malformed event: %+v", ev)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if kinds[obs.EventWindowSeal] == 0 {
		t.Errorf("no window.seal events: %v", kinds)
	}
	if kinds[obs.EventCheckpoint] == 0 {
		t.Errorf("no checkpoint events: %v", kinds)
	}
	if kinds[obs.EventLogGC] == 0 {
		// GC may legitimately reclaim nothing if the watermark is 0, but
		// after 32 inserts + checkpoint it should have truncated records.
		t.Logf("kinds = %v", kinds)
		t.Error("no log.gc events after checkpoint+truncate")
	}
	_ = time.Now
}
