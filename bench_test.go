package taurus_test

// Benchmark harness: one testing.B benchmark per figure of the paper's
// evaluation (§VII). Each benchmark regenerates its figure's rows and
// reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation. The
// same experiments are runnable interactively via cmd/taurus-bench,
// which prints the full tables.

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"taurus"
	"taurus/internal/bench"
	"taurus/internal/buffer"
	"taurus/internal/core"
	"taurus/internal/core/ir"
	"taurus/internal/exec"
	"taurus/internal/expr"
	"taurus/internal/page"
	"taurus/internal/pagestore"
	"taurus/internal/plog"
	"taurus/internal/tpch"
	"taurus/internal/types"
)

var benchFixture *bench.Fixture

func fixture(b *testing.B) *bench.Fixture {
	b.Helper()
	if benchFixture == nil {
		f, err := bench.NewFixture(0.005)
		if err != nil {
			b.Fatal(err)
		}
		benchFixture = f
	}
	return benchFixture
}

// BenchmarkFig5NetworkReduction regenerates Fig. 5: network read
// reduction with NDP on the Listing 5 micro-benchmark.
func BenchmarkFig5NetworkReduction(b *testing.B) {
	f := fixture(b)
	var rows []bench.Fig5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = f.Fig5()
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	for _, r := range rows {
		sum += r.ReductionPct
	}
	b.ReportMetric(sum/float64(len(rows)), "mean-net-reduction-%")
	if b.N == 1 {
		bench.PrintFig5(os.Stderr, rows)
	}
}

// BenchmarkFig6RuntimePQNDP regenerates Fig. 6: run-time reduction from
// PQ and PQ+NDP at DOP 32 on the simulated cluster clock.
func BenchmarkFig6RuntimePQNDP(b *testing.B) {
	f := fixture(b)
	var rows []bench.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = f.Fig6()
		if err != nil {
			b.Fatal(err)
		}
	}
	var pqOnly, pqNDP float64
	for _, r := range rows {
		pqOnly += r.PQOnlyPct
		pqNDP += r.PQandNDPPct
	}
	b.ReportMetric(pqOnly/float64(len(rows)), "mean-PQonly-%")
	b.ReportMetric(pqNDP/float64(len(rows)), "mean-PQ+NDP-%")
	if b.N == 1 {
		bench.PrintFig6(os.Stderr, rows)
	}
}

// BenchmarkFig7TPCHReduction regenerates Fig. 7: CPU and network
// reduction across the 22 TPC-H queries (paper headline: 63% data, 50%
// CPU, 18/22 queries benefit).
func BenchmarkFig7TPCHReduction(b *testing.B) {
	f := fixture(b)
	var res *bench.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = f.Fig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TotalNetPct, "total-net-reduction-%")
	b.ReportMetric(res.TotalCPUPct, "total-cpu-reduction-%")
	b.ReportMetric(float64(res.QueriesBenefit), "queries-benefiting")
	if b.N == 1 {
		bench.PrintFig7(os.Stderr, res)
	}
}

// BenchmarkFig8TPCHRuntime regenerates Fig. 8: per-query run-time
// reduction with NDP (simulated serial clock; Q4 regression included).
func BenchmarkFig8TPCHRuntime(b *testing.B) {
	f := fixture(b)
	var res *bench.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = f.Fig8()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TotalPct, "total-runtime-reduction-%")
	b.ReportMetric(float64(res.CountOver60), "queries-over-60pct")
	if b.N == 1 {
		bench.PrintFig8(os.Stderr, res)
	}
}

// BenchmarkFig9PQGains regenerates Fig. 9: further run-time reduction
// from PQ (DOP 16) on the seven parallelizable queries.
func BenchmarkFig9PQGains(b *testing.B) {
	f := fixture(b)
	var rows []bench.Fig9Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = f.Fig9()
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	for _, r := range rows {
		sum += r.ReductionPct
	}
	b.ReportMetric(sum/float64(len(rows)), "mean-PQ-reduction-%")
	if b.N == 1 {
		bench.PrintFig9(os.Stderr, rows)
	}
}

// BenchmarkQ4BufferPool regenerates the §VII-D buffer-pool experiment:
// lineitem pages resident after Q1–Q3 with NDP off vs on.
func BenchmarkQ4BufferPool(b *testing.B) {
	f := fixture(b)
	var noNDP, withNDP int
	for i := 0; i < b.N; i++ {
		var err error
		noNDP, withNDP, err = f.Q4BufferPool()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(noNDP), "lineitem-pages-no-NDP")
	b.ReportMetric(float64(withNDP), "lineitem-pages-NDP")
}

// BenchmarkDescriptorCache is the §IV-D1 ablation. The paper's
// descriptor decode + LLVM conversion cost milliseconds, so caching gave
// up to 50% on some benchmarks; this reproduction's IR compiles orders
// of magnitude faster, so the ablation is reported at the operation
// level: cost of serving a descriptor from the cache (Hit) vs decoding,
// validating, and JIT-compiling it from bytes (Miss), plus the
// query-level comparison for context.
func BenchmarkDescriptorCache(b *testing.B) {
	f := fixture(b)
	q, err := tpch.QueryByName("Q6")
	if err != nil {
		b.Fatal(err)
	}
	// Build a representative descriptor by running Q6 once and grabbing
	// its encoded descriptor through the engine's builder path.
	env := tpch.NewEnv(f.DB, true)
	if _, err := tpch.Run(env, exec.NewCtx(f.DB.Eng), q); err != nil {
		b.Fatal(err)
	}
	desc := q6Descriptor(b, f)
	plug := pagestore.InnoDBPlugin()
	b.Run("Hit", func(b *testing.B) {
		c := pagestore.NewDescriptorCache(16)
		if _, err := c.Get(plug, desc); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Get(plug, desc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Miss", func(b *testing.B) {
		c := pagestore.NewDescriptorCache(16)
		c.Disable()
		for i := 0; i < b.N; i++ {
			if _, err := c.Get(plug, desc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("QueryCacheOn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.DB.Eng.Pool().Clear()
			if _, err := f.RunQuery(q, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("QueryCacheOff", func(b *testing.B) {
		for _, ps := range f.Cluster.PageStores {
			c := pagestore.NewDescriptorCache(1)
			c.Disable()
			pagestore.WithDescriptorCache(c)(ps)
		}
		defer func() {
			for _, ps := range f.Cluster.PageStores {
				pagestore.WithDescriptorCache(pagestore.NewDescriptorCache(256))(ps)
			}
		}()
		for i := 0; i < b.N; i++ {
			f.DB.Eng.Pool().Clear()
			if _, err := f.RunQuery(q, true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// q6Descriptor builds the encoded NDP descriptor Q6's scan ships:
// the four-conjunct predicate as IR, a two-column projection, and the
// decomposed SUM aggregate.
func q6Descriptor(b *testing.B, f *bench.Fixture) []byte {
	b.Helper()
	idx := f.DB.Lineitem.Primary
	pred := expr.AndAll(
		expr.GE(expr.Col(tpch.LShipdate, "l_shipdate"), expr.Const(types.DateFromYMD(1994, 1, 1))),
		expr.LT(expr.Col(tpch.LShipdate, "l_shipdate"), expr.Const(types.DateFromYMD(1995, 1, 1))),
		expr.Between(expr.Col(tpch.LDiscount, "l_discount"),
			expr.Const(types.NewDecimal(5)), expr.Const(types.NewDecimal(7))),
		expr.LT(expr.Col(tpch.LQuantity, "l_quantity"), expr.Const(types.NewDecimal(2400))),
	)
	prog, err := ir.Compile(pred, idx.Schema.Len())
	if err != nil {
		b.Fatal(err)
	}
	argProg, err := ir.Compile(expr.Mul(expr.Col(0, "p"), expr.Col(1, "d")), 2)
	if err != nil {
		b.Fatal(err)
	}
	d := &core.Descriptor{
		IndexID:      idx.ID,
		Cols:         make([]types.Kind, idx.Schema.Len()),
		FixedLens:    make([]uint16, idx.Schema.Len()),
		Projection:   []uint16{tpch.LExtendedprice, tpch.LDiscount},
		Predicate:    prog.Encode(),
		Aggs:         []core.AggSpec{{Fn: core.AggSum, ArgCol: -1, ArgIR: argProg.Encode()}},
		LowWatermark: 1 << 40,
	}
	for i, c := range idx.Schema.Cols {
		d.Cols[i] = c.Kind
		d.FixedLens[i] = uint16(c.FixedLen)
	}
	return d.Encode()
}

// BenchmarkNDPScanVsRegular is the core data-path comparison on real
// wall-clock time: a filtered scan through the NDP path vs the regular
// per-page path, cold pool.
func BenchmarkNDPScanVsRegular(b *testing.B) {
	f := fixture(b)
	q, err := tpch.QueryByName("Q6")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		ndp  bool
	}{{"Regular", false}, {"NDP", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var bytes uint64
			for i := 0; i < b.N; i++ {
				f.DB.Eng.Pool().Clear()
				m, err := f.RunQuery(q, mode.ndp)
				if err != nil {
					b.Fatal(err)
				}
				bytes = m.NetBytes
			}
			b.ReportMetric(float64(bytes), "net-bytes/query")
		})
	}
}

// BenchmarkDurableAppend measures acknowledged durable appends per
// second through the persistent log: group commit (one fsync shared by
// every appender in the flush window) against the fsync-per-append
// baseline. Run with -cpu to vary the appender count; the gap widens
// with concurrency, which is the point of group commit.
func BenchmarkDurableAppend(b *testing.B) {
	payload := make([]byte, 256)
	for _, mode := range []struct {
		name string
		opts func() plog.Options
	}{
		{"GroupCommit", func() plog.Options { return plog.Options{FlushInterval: 500 * time.Microsecond} }},
		{"SyncPerAppend", func() plog.Options { return plog.Options{SyncEveryAppend: true} }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := mode.opts()
			opts.Dir = b.TempDir()
			l, err := plog.Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			var mark atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := l.Append(mark.Add(1), payload); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			st := l.Snapshot()
			if st.Appends > 0 {
				b.ReportMetric(float64(st.Syncs)/float64(st.Appends), "fsyncs/append")
			}
		})
	}
}

// BenchmarkConcurrentCommit measures durable commits per second through
// the write path under concurrent committers (use -cpu 1,4,8 to vary
// them): Pipelined is the group-commit pipeline (Write + WaitDurable —
// durability in triplicate, Page Store application asynchronous);
// SerialBaseline emulates the pre-pipeline path (global mutex across
// log append AND serial page application, flush per commit).
func BenchmarkConcurrentCommit(b *testing.B) {
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"Pipelined", false}, {"SerialBaseline", true}} {
		b.Run(mode.name, func(b *testing.B) {
			c, err := bench.NewWritePathCluster(b.TempDir(), 64, mode.serial)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			var worker atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				pageID := worker.Add(1)%64 + 1
				i := int64(0)
				for pb.Next() {
					i++
					rec := bench.CommitRecord(pageID, i)
					if mode.serial {
						if err := c.Serial.Commit(rec); err != nil {
							b.Error(err)
							return
						}
						continue
					}
					if _, err := c.SAL.Write(rec); err != nil {
						b.Error(err)
						return
					}
					if err := c.SAL.WaitDurable(rec.LSN); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if !mode.serial {
				st := c.SAL.Stats()
				if st.WindowsFlushed > 0 {
					b.ReportMetric(float64(st.RecordsFlushed)/float64(st.WindowsFlushed), "records/window")
				}
			}
		})
	}
}

// BenchmarkShardedBufferPool measures buffer pool Get throughput under
// concurrent scans (run with -cpu 1,4,8): a hot working set over a
// sharded pool, where the old single-mutex design serialized every
// lookup.
func BenchmarkShardedBufferPool(b *testing.B) {
	const capacity = 8192
	const working = 6144
	pool := buffer.New(capacity, 64)
	fetch := func(id uint64) (*page.Page, error) { return page.New(id, 1, 0), nil }
	for i := uint64(1); i <= working; i++ {
		if _, err := pool.Get(i, fetch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pool.Shards()), "shards")
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := seq.Add(0x9E3779B9)
		for pb.Next() {
			rng = rng*6364136223846793005 + 1442695040888963407
			id := rng%working + 1
			if _, err := pool.Get(id, fetch); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkCheckpointRecovery compares the two recovery paths of a
// durable deployment at the public API: Open over a DataDir whose log
// holds the whole workload (full replay) against one whose Page Stores
// checkpointed — and whose log was truncated to the tail — just before
// the crash.
func BenchmarkCheckpointRecovery(b *testing.B) {
	const rows = 5000
	prepare := func(b *testing.B, checkpoint bool) (string, taurus.Config) {
		b.Helper()
		dir := b.TempDir()
		cfg := taurus.Config{DataDir: dir, PagesPerSlice: 64, LogFlushInterval: 200 * time.Microsecond}
		db, err := taurus.Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(`CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
			salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`); err != nil {
			b.Fatal(err)
		}
		var sb strings.Builder
		const chunk = 500
		for at := 0; at < rows; at += chunk {
			sb.Reset()
			sb.WriteString("INSERT INTO worker VALUES ")
			for i := 0; i < chunk && at+i < rows; i++ {
				if i > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(&sb, "(%d, %d, DATE '2012-01-15', 3100.00, 'w%d')", at+i, 20+(at+i)%45, at+i)
			}
			if _, err := db.Exec(sb.String()); err != nil {
				b.Fatal(err)
			}
		}
		if checkpoint {
			if _, err := db.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			if _, err := db.TruncateLogs(); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
		return dir, cfg
	}
	for _, mode := range []struct {
		name       string
		checkpoint bool
	}{{"FullReplay", false}, {"CheckpointTail", true}} {
		b.Run(mode.name, func(b *testing.B) {
			_, cfg := prepare(b, mode.checkpoint)
			var replayed int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db, err := taurus.Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				replayed = db.RecoverySummary().TailRecords
				b.StopTimer()
				if res, err := db.Exec("SELECT COUNT(*) FROM worker"); err != nil || res.Rows[0][0].I != rows {
					b.Fatalf("recovered count: %v (%v)", res, err)
				}
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(replayed), "tail-records-replayed")
		})
	}
}

// BenchmarkCrashRecovery measures full-database recovery: Open over a
// DataDir whose log holds an acknowledged workload, replaying records
// into the Page Stores and rebuilding the data dictionary.
func BenchmarkCrashRecovery(b *testing.B) {
	for _, rows := range []int{1000, 5000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			dir := b.TempDir()
			cfg := taurus.Config{DataDir: dir, PagesPerSlice: 64, LogFlushInterval: 200 * time.Microsecond}
			db, err := taurus.Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.Exec(`CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
				salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`); err != nil {
				b.Fatal(err)
			}
			var sb strings.Builder
			const chunk = 500
			for at := 0; at < rows; at += chunk {
				sb.Reset()
				sb.WriteString("INSERT INTO worker VALUES ")
				for i := 0; i < chunk && at+i < rows; i++ {
					if i > 0 {
						sb.WriteString(",")
					}
					fmt.Fprintf(&sb, "(%d, %d, DATE '2012-01-15', 3100.00, 'w%d')", at+i, 20+(at+i)%45, at+i)
				}
				if _, err := db.Exec(sb.String()); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db, err := taurus.Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				recovered := db.RecoveryStats().Records
				b.StopTimer()
				if recovered == 0 {
					b.Fatal("nothing recovered")
				}
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(rows), "rows-recovered")
		})
	}
}

// BenchmarkSkewedSliceCommit runs the skewed-slice write-path scenario
// (hot slice beside a slow Page Store replica on an unrelated slice)
// and reports the hot-commit p99 improvement of per-slice lanes over
// the single-global-window baseline. CI runs it with -benchtime=1x as
// the lane smoke test; taurus-bench writepath runs the full version.
func BenchmarkSkewedSliceCommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, promotions, err := bench.SkewedWritePath(96, 2, 500*time.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		var rep bench.WritePathReport
		rep.AddSkewed(rows, promotions)
		b.ReportMetric(rep.SkewedHotP99ImprovementX, "p99-improvement-x")
		b.ReportMetric(float64(promotions), "promotions")
	}
}

// BenchmarkReplicaReads runs the taurus-bench replicas scenario's
// smallest levels: point SELECTs on log-tailing read replicas beside a
// continuous writer, reporting read QPS and sampled p99 lag. (QPS
// scaling across replicas tracks available cores; the CI smoke run
// checks the machinery, not the scaling factor.)
func BenchmarkReplicaReads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Replicas(250*time.Millisecond, []int{1, 2}, 2)
		if err != nil {
			b.Fatal(err)
		}
		rep := bench.BuildReplicasReport(rows)
		b.ReportMetric(rows[0].ReadQPS, "reads/s@1")
		b.ReportMetric(rows[len(rows)-1].ReadQPS, "reads/s@2")
		b.ReportMetric(rows[len(rows)-1].P99LagRecords, "p99-lag-records")
		b.ReportMetric(rep.ReadScaling2x, "scaling-2x")
	}
}
