// Package taurus is the public embedded API of the Taurus NDP
// reproduction: a cloud-native database with separated compute and
// storage and near-data processing (selection, projection, and
// aggregation pushdown into Page Stores), after "Near Data Processing in
// Taurus Database" (ICDE 2022).
//
// Open creates a complete single-process deployment: Log Stores, Page
// Stores, the Storage Abstraction Layer, and the database frontend
// (storage engine + executor + SQL). The same components can be deployed
// over TCP with cmd/taurus-server; the embedded form wires them through
// the in-process transport, whose byte accounting is exact.
//
//	db, _ := taurus.Open(taurus.Config{})
//	db.Exec(`CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
//	         salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
//	db.Exec(`INSERT INTO worker VALUES (1, 35, DATE '2010-03-01', 4200.00, 'ann')`)
//	res, _ := db.Exec(`SELECT AVG(salary) FROM worker WHERE age < 40`)
package taurus

import (
	"fmt"
	"path/filepath"
	"time"

	"taurus/internal/cluster"
	"taurus/internal/engine"
	"taurus/internal/logstore"
	"taurus/internal/pagestore"
	"taurus/internal/sal"
	"taurus/internal/sql"
	"taurus/internal/types"
)

// Config sizes the embedded deployment. The zero value matches the
// paper's small test cluster: four Page Stores, three-way replication.
type Config struct {
	// PageStores is the number of storage nodes (default 4).
	PageStores int
	// ReplicationFactor is slice replication (default 3).
	ReplicationFactor int
	// PoolPages is the buffer pool capacity in 16 KB pages (default 4096).
	PoolPages int
	// NDPMaxPagesLookAhead bounds NDP batch reads (default 1024).
	NDPMaxPagesLookAhead int
	// PagesPerSlice overrides the slice size in pages (default: 10 GB
	// worth of pages; small deployments may shrink it so data spreads
	// across Page Stores).
	PagesPerSlice uint64
	// DisableNDP turns pushdown off (the experiments' baseline).
	DisableNDP bool

	// DataDir makes the Log Stores durable: each one persists its
	// acknowledged batches to a segmented on-disk log under this
	// directory, and Open replays the surviving records to rebuild both
	// the Page Stores and the frontend's data dictionary after a crash
	// or restart. Empty keeps the all-in-memory behavior.
	DataDir string
	// LogFlushInterval is the Log Stores' group-commit window (default
	// 2 ms): an append is acknowledged once an fsync covering it
	// completes, and all appends arriving within the window share one
	// fsync.
	LogFlushInterval time.Duration
	// LogSegmentBytes is the Log Stores' segment rotation size
	// (default 16 MB).
	LogSegmentBytes int64
	// LogSyncEveryAppend disables group commit and fsyncs every append
	// — the durability benchmark's baseline.
	LogSyncEveryAppend bool
}

// DB is an open database.
type DB struct {
	session   *sql.Session
	eng       *engine.Engine
	tr        *cluster.InProc
	stores    []*pagestore.Store
	logs      []*logstore.Store
	recovered engine.RecoveryStats
}

// Result is a statement result.
type Result = sql.Result

// Row is a result row.
type Row = types.Row

// Open builds the deployment. With Config.DataDir set it also recovers:
// log records that were acknowledged before the last shutdown (or
// crash) are read back from disk — a torn final record is detected by
// CRC and discarded — and replayed through the regular Page Store apply
// path, so every committed transaction is visible again.
func Open(cfg Config) (*DB, error) {
	if cfg.PageStores <= 0 {
		cfg.PageStores = 4
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 3
	}
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 4096
	}
	tr := cluster.NewInProc()
	db := &DB{tr: tr}
	logNames := []string{"log1", "log2", "log3"}
	for _, n := range logNames {
		var ls *logstore.Store
		if cfg.DataDir == "" {
			ls = logstore.New(n)
		} else {
			var opts []logstore.Option
			if cfg.LogFlushInterval > 0 {
				opts = append(opts, logstore.WithFlushInterval(cfg.LogFlushInterval))
			}
			if cfg.LogSegmentBytes > 0 {
				opts = append(opts, logstore.WithSegmentBytes(cfg.LogSegmentBytes))
			}
			if cfg.LogSyncEveryAppend {
				opts = append(opts, logstore.WithSyncEveryAppend())
			}
			var err error
			ls, err = logstore.Open(n, filepath.Join(cfg.DataDir, n), opts...)
			if err != nil {
				db.closeLogs()
				return nil, err
			}
		}
		db.logs = append(db.logs, ls)
		tr.Register(n, ls)
	}
	var psNames []string
	for i := 0; i < cfg.PageStores; i++ {
		name := fmt.Sprintf("pagestore-%d", i+1)
		ps := pagestore.New(name)
		db.stores = append(db.stores, ps)
		psNames = append(psNames, name)
		tr.Register(name, ps)
	}
	s, err := sal.New(sal.Config{
		Tenant: 1, Transport: tr, LogStores: logNames, PageStores: psNames,
		ReplicationFactor: cfg.ReplicationFactor, PagesPerSlice: cfg.PagesPerSlice,
		Plugin: pagestore.PluginInnoDB,
	})
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(engine.Config{
		SAL: s, PoolPages: cfg.PoolPages, NDPMaxPagesLookAhead: cfg.NDPMaxPagesLookAhead,
	})
	if err != nil {
		db.closeLogs()
		return nil, err
	}
	db.eng = eng
	db.session = sql.NewSession(eng)
	db.session.NDP = !cfg.DisableNDP
	if cfg.DataDir != "" {
		if err := db.recover(s, eng); err != nil {
			db.closeLogs()
			return nil, err
		}
	}
	return db, nil
}

// recover replays the durable log: pages are rebuilt by pushing the
// records through the Page Store apply path, the data dictionary by the
// catalog records, and the LSN / transaction allocators resume above
// everything the log mentions.
func (db *DB) recover(s *sal.SAL, eng *engine.Engine) error {
	// The Log Stores are written in triplicate and acknowledged
	// synchronously, so they normally agree; after a crash the most
	// complete replica wins: most records first (a replica that tore a
	// mid-log batch in an earlier crash has fewer, even if later writes
	// advanced its LSN), then highest durable LSN (Taurus: "the master
	// finds the Log Store with the highest LSN"). True hole repair is
	// replica catch-up, tracked in ROADMAP.
	best := db.logs[0]
	for _, ls := range db.logs[1:] {
		if ls.Len() > best.Len() ||
			(ls.Len() == best.Len() && ls.DurableLSN() > best.DurableLSN()) {
			best = ls
		}
	}
	recs := best.ReadFrom(0)
	if len(recs) == 0 {
		return nil
	}
	// Resume the LSN allocator first: recovery may itself log records
	// (a catalog entry whose root page never made it to disk gets a
	// fresh, empty root).
	s.ResumeLSN(best.DurableLSN())
	if err := s.Replay(recs); err != nil {
		return fmt.Errorf("taurus: replaying %d records: %w", len(recs), err)
	}
	st, err := eng.Recover(recs)
	if err != nil {
		return fmt.Errorf("taurus: recovering catalog: %w", err)
	}
	db.recovered = st
	// Refresh optimizer statistics so NDP decisions see the recovered
	// data (the paper's ANALYZE-equivalent runs on restart).
	for _, name := range eng.Tables() {
		if _, err := db.session.Cat.Analyze(name); err != nil {
			return fmt.Errorf("taurus: analyzing recovered table %s: %w", name, err)
		}
	}
	return nil
}

// closeLogs releases any disk-backed Log Stores (partial-open cleanup
// and DB.Close).
func (db *DB) closeLogs() error {
	var first error
	for _, ls := range db.logs {
		if ls == nil {
			continue
		}
		if err := ls.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close flushes all buffered log records to the storage services and
// releases the Log Stores' on-disk segments. The database must not be
// used afterwards. Close is not required for durability — every
// acknowledged statement already survived — but it makes the final
// buffered (unacknowledged) records durable too.
func (db *DB) Close() error {
	flushErr := db.eng.SAL().Flush()
	if err := db.closeLogs(); err != nil && flushErr == nil {
		flushErr = err
	}
	return flushErr
}

// RecoveryStats reports what Open rebuilt from DataDir (zero value for
// a fresh or in-memory database).
func (db *DB) RecoveryStats() engine.RecoveryStats { return db.recovered }

// DurableLSN returns the highest log sequence number acknowledged by
// any of the Log Store replicas (0 for a deployment with nothing
// flushed yet).
func (db *DB) DurableLSN() uint64 {
	var max uint64
	for _, ls := range db.logs {
		if l := ls.DurableLSN(); l > max {
			max = l
		}
	}
	return max
}

// Exec parses and executes one SQL statement (CREATE TABLE, INSERT,
// SELECT, EXPLAIN SELECT).
func (db *DB) Exec(query string) (*Result, error) { return db.session.Exec(query) }

// SetNDP toggles near-data processing for subsequent queries.
func (db *DB) SetNDP(enabled bool) { db.session.NDP = enabled }

// NDPEnabled reports the current setting.
func (db *DB) NDPEnabled() bool { return db.session.NDP }

// SetNDPPageThreshold overrides the optimizer's minimum estimated scan
// I/O (in pages) for NDP eligibility — the paper's 10,000-page rule,
// which small embedded datasets usually want lowered.
func (db *DB) SetNDPPageThreshold(pages int64) { db.session.Cat.NDPPageThreshold = pages }

// Engine exposes the storage engine for advanced (typed) access: bulk
// loads, explicit scans, custom plans.
func (db *DB) Engine() *engine.Engine { return db.eng }

// ClearBufferPool drops all cached pages, so the next scan reads from
// the Page Stores ("cold" start, as the paper's experiments begin).
func (db *DB) ClearBufferPool() { db.eng.Pool().Clear() }

// NetworkStats returns cumulative compute↔storage traffic counters.
func (db *DB) NetworkStats() cluster.CountersSnapshot { return db.tr.Stats.Snapshot() }

// EngineStats returns cumulative SQL-node work counters.
func (db *DB) EngineStats() engine.MetricsSnapshot { return db.eng.Metrics.Snapshot() }

// PageStoreStats returns per-store counters (log records applied, NDP
// pages processed and skipped, ...).
func (db *DB) PageStoreStats() []pagestore.StatsSnapshot {
	out := make([]pagestore.StatsSnapshot, len(db.stores))
	for i, ps := range db.stores {
		out[i] = ps.Snapshot()
	}
	return out
}
