// Package taurus is the public embedded API of the Taurus NDP
// reproduction: a cloud-native database with separated compute and
// storage and near-data processing (selection, projection, and
// aggregation pushdown into Page Stores), after "Near Data Processing in
// Taurus Database" (ICDE 2022).
//
// Open creates a complete single-process deployment: Log Stores, Page
// Stores, the Storage Abstraction Layer, and the database frontend
// (storage engine + executor + SQL). The same components can be deployed
// over TCP with cmd/taurus-server; the embedded form wires them through
// the in-process transport, whose byte accounting is exact.
//
//	db, _ := taurus.Open(taurus.Config{})
//	db.Exec(`CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
//	         salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
//	db.Exec(`INSERT INTO worker VALUES (1, 35, DATE '2010-03-01', 4200.00, 'ann')`)
//	res, _ := db.Exec(`SELECT AVG(salary) FROM worker WHERE age < 40`)
package taurus

import (
	"fmt"

	"taurus/internal/cluster"
	"taurus/internal/engine"
	"taurus/internal/logstore"
	"taurus/internal/pagestore"
	"taurus/internal/sal"
	"taurus/internal/sql"
	"taurus/internal/types"
)

// Config sizes the embedded deployment. The zero value matches the
// paper's small test cluster: four Page Stores, three-way replication.
type Config struct {
	// PageStores is the number of storage nodes (default 4).
	PageStores int
	// ReplicationFactor is slice replication (default 3).
	ReplicationFactor int
	// PoolPages is the buffer pool capacity in 16 KB pages (default 4096).
	PoolPages int
	// NDPMaxPagesLookAhead bounds NDP batch reads (default 1024).
	NDPMaxPagesLookAhead int
	// PagesPerSlice overrides the slice size in pages (default: 10 GB
	// worth of pages; small deployments may shrink it so data spreads
	// across Page Stores).
	PagesPerSlice uint64
	// DisableNDP turns pushdown off (the experiments' baseline).
	DisableNDP bool
}

// DB is an open database.
type DB struct {
	session *sql.Session
	eng     *engine.Engine
	tr      *cluster.InProc
	stores  []*pagestore.Store
	logs    []*logstore.Store
}

// Result is a statement result.
type Result = sql.Result

// Row is a result row.
type Row = types.Row

// Open builds the deployment.
func Open(cfg Config) (*DB, error) {
	if cfg.PageStores <= 0 {
		cfg.PageStores = 4
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 3
	}
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 4096
	}
	tr := cluster.NewInProc()
	db := &DB{tr: tr}
	logNames := []string{"log1", "log2", "log3"}
	for _, n := range logNames {
		ls := logstore.New(n)
		db.logs = append(db.logs, ls)
		tr.Register(n, ls)
	}
	var psNames []string
	for i := 0; i < cfg.PageStores; i++ {
		name := fmt.Sprintf("pagestore-%d", i+1)
		ps := pagestore.New(name)
		db.stores = append(db.stores, ps)
		psNames = append(psNames, name)
		tr.Register(name, ps)
	}
	s, err := sal.New(sal.Config{
		Tenant: 1, Transport: tr, LogStores: logNames, PageStores: psNames,
		ReplicationFactor: cfg.ReplicationFactor, PagesPerSlice: cfg.PagesPerSlice,
		Plugin: pagestore.PluginInnoDB,
	})
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(engine.Config{
		SAL: s, PoolPages: cfg.PoolPages, NDPMaxPagesLookAhead: cfg.NDPMaxPagesLookAhead,
	})
	if err != nil {
		return nil, err
	}
	db.eng = eng
	db.session = sql.NewSession(eng)
	db.session.NDP = !cfg.DisableNDP
	return db, nil
}

// Exec parses and executes one SQL statement (CREATE TABLE, INSERT,
// SELECT, EXPLAIN SELECT).
func (db *DB) Exec(query string) (*Result, error) { return db.session.Exec(query) }

// SetNDP toggles near-data processing for subsequent queries.
func (db *DB) SetNDP(enabled bool) { db.session.NDP = enabled }

// NDPEnabled reports the current setting.
func (db *DB) NDPEnabled() bool { return db.session.NDP }

// SetNDPPageThreshold overrides the optimizer's minimum estimated scan
// I/O (in pages) for NDP eligibility — the paper's 10,000-page rule,
// which small embedded datasets usually want lowered.
func (db *DB) SetNDPPageThreshold(pages int64) { db.session.Cat.NDPPageThreshold = pages }

// Engine exposes the storage engine for advanced (typed) access: bulk
// loads, explicit scans, custom plans.
func (db *DB) Engine() *engine.Engine { return db.eng }

// ClearBufferPool drops all cached pages, so the next scan reads from
// the Page Stores ("cold" start, as the paper's experiments begin).
func (db *DB) ClearBufferPool() { db.eng.Pool().Clear() }

// NetworkStats returns cumulative compute↔storage traffic counters.
func (db *DB) NetworkStats() cluster.CountersSnapshot { return db.tr.Stats.Snapshot() }

// EngineStats returns cumulative SQL-node work counters.
func (db *DB) EngineStats() engine.MetricsSnapshot { return db.eng.Metrics.Snapshot() }

// PageStoreStats returns per-store counters (log records applied, NDP
// pages processed and skipped, ...).
func (db *DB) PageStoreStats() []pagestore.StatsSnapshot {
	out := make([]pagestore.StatsSnapshot, len(db.stores))
	for i, ps := range db.stores {
		out[i] = ps.Snapshot()
	}
	return out
}
