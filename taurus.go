// Package taurus is the public embedded API of the Taurus NDP
// reproduction: a cloud-native database with separated compute and
// storage and near-data processing (selection, projection, and
// aggregation pushdown into Page Stores), after "Near Data Processing in
// Taurus Database" (ICDE 2022).
//
// Open creates a complete single-process deployment: Log Stores, Page
// Stores, the Storage Abstraction Layer, and the database frontend
// (storage engine + executor + SQL). The same components can be deployed
// over TCP with cmd/taurus-server; the embedded form wires them through
// the in-process transport, whose byte accounting is exact.
//
//	db, _ := taurus.Open(taurus.Config{})
//	db.Exec(`CREATE TABLE worker (id BIGINT, age INT, join_date DATE,
//	         salary DECIMAL(15,2), name VARCHAR, PRIMARY KEY(id))`)
//	db.Exec(`INSERT INTO worker VALUES (1, 35, DATE '2010-03-01', 4200.00, 'ann')`)
//	res, _ := db.Exec(`SELECT AVG(salary) FROM worker WHERE age < 40`)
package taurus

import (
	"fmt"
	"log"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"taurus/internal/buffer"
	"taurus/internal/cluster"
	"taurus/internal/engine"
	"taurus/internal/health"
	"taurus/internal/logstore"
	"taurus/internal/obs"
	"taurus/internal/pagestore"
	"taurus/internal/pstore"
	"taurus/internal/replica"
	"taurus/internal/sal"
	"taurus/internal/sql"
	"taurus/internal/types"
	"taurus/internal/wal"
)

// Config sizes the embedded deployment. The zero value matches the
// paper's small test cluster: four Page Stores, three-way replication.
type Config struct {
	// PageStores is the number of storage nodes (default 4).
	PageStores int
	// ReplicationFactor is slice replication (default 3).
	ReplicationFactor int
	// PoolPages is the buffer pool capacity in 16 KB pages (default 4096).
	PoolPages int
	// NDPMaxPagesLookAhead bounds NDP batch reads (default 1024).
	NDPMaxPagesLookAhead int
	// PagesPerSlice overrides the slice size in pages (default: 10 GB
	// worth of pages; small deployments may shrink it so data spreads
	// across Page Stores).
	PagesPerSlice uint64
	// DisableNDP turns pushdown off (the experiments' baseline).
	DisableNDP bool
	// ScanParallelism is the worker-pool width for partitioned NDP
	// scans: per-slice scan partitions dispatched concurrently, each to
	// the least-loaded Page Store replica of its slice (0 = GOMAXPROCS,
	// 1 = serial).
	ScanParallelism int
	// DisableScanRouting pins scan sub-batch routing to round-robin
	// instead of the least-loaded replica pick (the bench baseline).
	DisableScanRouting bool
	// WriteLanes is the number of dedicated per-slice write lanes hot
	// slices can be promoted into, besides the shared lane (0 = SAL
	// default; negative disables promotion — the old single-global-
	// window write path, kept for before/after benchmarks).
	WriteLanes int
	// WriteFlushThreshold pins every lane's group-commit window size.
	// 0 (default) keeps the adaptive threshold: lanes size their
	// windows from observed arrival rate and fsync latency. Pinning is
	// useful when deterministic statement→log-entry batching matters
	// (tests, torn-tail forensics).
	WriteFlushThreshold int

	// DataDir makes the Log Stores durable: each one persists its
	// acknowledged batches to a segmented on-disk log under this
	// directory, and Open replays the surviving records to rebuild both
	// the Page Stores and the frontend's data dictionary after a crash
	// or restart. It also attaches a checkpoint store to every Page
	// Store: DB.Checkpoint persists page images and the data dictionary
	// so recovery only replays the log tail above the checkpoint. Empty
	// keeps the all-in-memory behavior.
	DataDir string
	// CheckpointInterval starts the background checkpointer (requires
	// DataDir): on every tick — and once more on Close — the Page
	// Stores checkpoint their slices, the frontend checkpoints its
	// catalog and B+ tree roots, and the durable log is garbage-
	// collected up to the cluster watermark (the minimum LSN every
	// slice replica has durably persisted), so a long-lived node's log
	// stops growing without bound. 0 disables automatic checkpoints;
	// DB.Checkpoint and DB.TruncateLogs remain available.
	CheckpointInterval time.Duration
	// LogFlushInterval is the Log Stores' group-commit window (default
	// 2 ms): an append is acknowledged once an fsync covering it
	// completes, and all appends arriving within the window share one
	// fsync.
	LogFlushInterval time.Duration
	// LogSegmentBytes is the Log Stores' segment rotation size
	// (default 16 MB).
	LogSegmentBytes int64
	// LogSyncEveryAppend disables group commit and fsyncs every append
	// — the durability benchmark's baseline.
	LogSyncEveryAppend bool

	// SlowOpThreshold arms the slow-op log: every statement whose total
	// execution time meets or exceeds it emits one structured line with
	// a per-stage breakdown (parse, plan, execute / apply, commit). 0
	// disables tracing entirely — statements then pay one branch.
	SlowOpThreshold time.Duration
	// SlowOpLogger overrides the slow-op destination (default: the
	// standard logger).
	SlowOpLogger *log.Logger

	// TraceSampleRate is the probability that a statement opens a
	// distributed trace: a root span on the frontend whose context rides
	// the cluster frames, so Log Store appends and Page Store applies on
	// other components land in the same trace tree. 0 (default) disables
	// rate-based sampling; DB.ExecTraced still forces a trace per call,
	// so the collection costs nothing until someone asks for it.
	TraceSampleRate float64

	// HeartbeatInterval is the health heartbeat period: the master pings
	// every embedded storage node (and attached replicas) each interval
	// over the cluster transport, feeding the failure detector behind
	// ClusterHealth / GET /cluster/health. 0 selects the default (1s);
	// negative disables heartbeating (the detector and peer table stay
	// empty; per-node checks still work).
	HeartbeatInterval time.Duration
	// SuspectThreshold is the heartbeat silence after which a peer turns
	// Suspect; a peer silent for twice this is Dead. Default 5s.
	SuspectThreshold time.Duration

	// Master attaches a read replica to a running master's storage
	// cluster (OpenReplica only; ignored by Open). The replica shares
	// the master's Log Stores and Page Stores, tails the log to advance
	// its visible LSN, and serves read-only SQL.
	Master *DB
	// ReplicaRefreshInterval is the replica's poll fallback cadence
	// (OpenReplica only; default 25ms). The master's SAL also pushes
	// LSN-advance notifications, which usually refresh sooner.
	ReplicaRefreshInterval time.Duration
	// ReplicaPullTail opts a replica out of push-based log subscription
	// streams and back into the legacy pull tailer (MsgLogRead +
	// MsgSliceLSN polling). Mixed fleets work: pull and push replicas
	// can tail the same stores concurrently (OpenReplica only).
	ReplicaPullTail bool
}

// DB is an open database frontend: a read-write master (Open) or a
// read-only replica (OpenReplica).
type DB struct {
	cfg       Config
	session   *sql.Session
	eng       *engine.Engine
	tr        *cluster.InProc
	stores    []*pagestore.Store
	logs      []*logstore.Store
	logNames  []string
	psNames   []string
	recovered engine.RecoveryStats
	summary   RecoverySummary

	// obsReg collects every component's metrics for Prometheus export;
	// rpc attributes transport traffic per message type (a replica shares
	// its master's transport and therefore its RPC metrics).
	obsReg *obs.Registry
	rpc    *cluster.RPCMetrics

	// tracer is this frontend's span collector (statement roots, SAL
	// pipeline spans, client rpc spans); tracers additionally holds every
	// embedded component's collector so TraceSpans can assemble the
	// cross-"node" tree the way a TCP deployment would by querying each
	// server. events is this node's flight recorder.
	tracer  *obs.Tracer
	tracers []*obs.Tracer
	events  *obs.EventRing

	// health is this frontend's own check monitor (SAL pipeline and
	// checkpointer probes on a master, lag/stream probes on a replica);
	// det is the master's failure detector over the storage fleet and
	// attached replicas, driven by the heartbeat pinger goroutine
	// (hbStop/hbDone). det is nil on replicas and when heartbeats are
	// disabled.
	health *health.Monitor
	det    *health.Detector
	hbStop chan struct{}
	hbDone chan struct{}

	// Replica state (OpenReplica); master tracks how many replicas it
	// has named so far.
	rep     *replica.Replica
	repName string
	master  *DB
	repSeq  atomic.Uint64

	// meta is the frontend's checkpoint store (catalog, roots,
	// allocators); nil without DataDir.
	meta *pstore.Store
	// ckMu serializes checkpoints; lastCkptLSN is the watermark of the
	// last durably written meta checkpoint — the highest LSN log GC may
	// reach, because records below it are covered by durable page
	// checkpoints AND the catalog below it is in the durable meta.
	ckMu        sync.Mutex
	lastCkptLSN uint64
	ckErr       error

	ckStop chan struct{}
	ckDone chan struct{}
}

// RecoverySummary reports how Open rebuilt the deployment from DataDir.
type RecoverySummary struct {
	// CheckpointLSN is the watermark of the meta checkpoint recovery
	// started from (0 = full log replay).
	CheckpointLSN uint64
	// RestoredSlices/RestoredPages count what the Page Stores loaded
	// from slice checkpoints; CorruptCheckpoints counts checkpoint
	// files that failed validation and were ignored.
	RestoredSlices     int
	RestoredPages      int
	CorruptCheckpoints int
	// TailRecords is how many log records were replayed on top of the
	// checkpoints (the whole log when CheckpointLSN is 0).
	TailRecords int
	// VoidedRecords counts records discarded as dead-epoch tails: with
	// per-slice write lanes a crash can leave a later lane's window
	// durable while an earlier lane's window was lost, and none of
	// those records were ever acknowledged (the commit watermark cannot
	// pass an LSN hole).
	VoidedRecords int
}

// Result is a statement result.
type Result = sql.Result

// Row is a result row.
type Row = types.Row

// Open builds the deployment. With Config.DataDir set it also recovers:
// log records that were acknowledged before the last shutdown (or
// crash) are read back from disk — a torn final record is detected by
// CRC and discarded — and replayed through the regular Page Store apply
// path, so every committed transaction is visible again.
func Open(cfg Config) (*DB, error) {
	if cfg.PageStores <= 0 {
		cfg.PageStores = 4
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 3
	}
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 4096
	}
	tr := cluster.NewInProc()
	reg := obs.NewRegistry()
	rpc := cluster.NewRPCMetrics(reg, "client")
	tr.Metrics = rpc
	db := &DB{cfg: cfg, tr: tr, obsReg: reg, rpc: rpc}
	// One tracer per embedded component, exactly as a TCP deployment has
	// one per server: spans carry their collector's node name, and
	// TraceSpans merges the rings the way taurus-sql -trace queries each
	// node's /trace endpoint.
	db.tracer = obs.NewTracer("frontend", cfg.TraceSampleRate, 0)
	db.tracers = append(db.tracers, db.tracer)
	tr.Tracer = db.tracer // client rpc spans are issued from this frontend
	db.events = obs.NewEventRing(0)
	logNames := []string{"log1", "log2", "log3"}
	for _, n := range logNames {
		var ls *logstore.Store
		if cfg.DataDir == "" {
			ls = logstore.New(n)
		} else {
			var opts []logstore.Option
			if cfg.LogFlushInterval > 0 {
				opts = append(opts, logstore.WithFlushInterval(cfg.LogFlushInterval))
			}
			if cfg.LogSegmentBytes > 0 {
				opts = append(opts, logstore.WithSegmentBytes(cfg.LogSegmentBytes))
			}
			if cfg.LogSyncEveryAppend {
				opts = append(opts, logstore.WithSyncEveryAppend())
			}
			var err error
			ls, err = logstore.Open(n, filepath.Join(cfg.DataDir, n), opts...)
			if err != nil {
				db.closeLogs()
				return nil, err
			}
		}
		ls.RegisterMetrics(reg)
		lt := obs.NewTracer(n, cfg.TraceSampleRate, 0)
		ls.SetTracer(lt)
		ls.SetEvents(db.events)
		lm := health.NewMonitor(n, "logstore",
			health.MonitorOptions{Events: db.events, Metrics: reg})
		ls.RegisterHealth(lm)
		ls.SetHealth(lm)
		db.tracers = append(db.tracers, lt)
		db.logs = append(db.logs, ls)
		db.logNames = append(db.logNames, n)
		tr.Register(n, ls)
		// Arm the push-stream hub: the store reaches subscribed replicas
		// over the same fabric they reach it on.
		ls.SetPushTransport(tr)
	}
	var psNames []string
	for i := 0; i < cfg.PageStores; i++ {
		name := fmt.Sprintf("pagestore-%d", i+1)
		pt := obs.NewTracer(name, cfg.TraceSampleRate, 0)
		db.tracers = append(db.tracers, pt)
		popts := []pagestore.Option{pagestore.WithMetrics(reg),
			pagestore.WithTracer(pt), pagestore.WithEvents(db.events)}
		if cfg.DataDir != "" {
			cs, err := pstore.Open(pstore.Options{Dir: filepath.Join(cfg.DataDir, name)})
			if err != nil {
				db.closeLogs()
				return nil, err
			}
			popts = append(popts, pagestore.WithCheckpoints(cs))
		}
		ps := pagestore.New(name, popts...)
		if cfg.DataDir != "" {
			rst, err := ps.Restore()
			if err != nil {
				db.closeLogs()
				return nil, fmt.Errorf("taurus: restoring %s: %w", name, err)
			}
			db.summary.RestoredSlices += rst.Slices
			db.summary.RestoredPages += rst.Pages
			db.summary.CorruptCheckpoints += rst.Corrupt
		}
		pm := health.NewMonitor(name, "pagestore",
			health.MonitorOptions{Events: db.events, Metrics: reg})
		ps.RegisterHealth(pm, cfg.CheckpointInterval)
		ps.SetHealth(pm)
		db.stores = append(db.stores, ps)
		psNames = append(psNames, name)
		tr.Register(name, ps)
	}
	db.psNames = psNames
	if cfg.DataDir != "" {
		var err error
		db.meta, err = pstore.Open(pstore.Options{Dir: filepath.Join(cfg.DataDir, "frontend")})
		if err != nil {
			db.closeLogs()
			return nil, err
		}
	}
	s, err := sal.New(sal.Config{
		Tenant: 1, Transport: tr, LogStores: logNames, PageStores: psNames,
		ReplicationFactor: cfg.ReplicationFactor, PagesPerSlice: cfg.PagesPerSlice,
		Plugin: pagestore.PluginInnoDB, MaxSliceLanes: cfg.WriteLanes,
		FlushThreshold: cfg.WriteFlushThreshold, Metrics: reg,
		Tracer: db.tracer, Events: db.events,
		DisableLeastLoadedReads: cfg.DisableScanRouting,
	})
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(engine.Config{
		SAL: s, PoolPages: cfg.PoolPages, NDPMaxPagesLookAhead: cfg.NDPMaxPagesLookAhead,
		ScanParallelism: cfg.ScanParallelism, Tracer: db.tracer, Events: db.events,
	})
	if err != nil {
		db.closeLogs()
		return nil, err
	}
	eng.RegisterMetrics(reg, "master")
	eng.Pool().RegisterMetrics(reg, "master")
	db.eng = eng
	db.session = sql.NewSession(eng)
	db.session.NDP = !cfg.DisableNDP
	db.session.Slow = obs.NewSlowOpLog(cfg.SlowOpThreshold, cfg.SlowOpLogger)
	db.session.Tracer = db.tracer
	reg.CounterFunc("taurus_slow_ops_fired_total",
		"Statements the slow-op log fired on (met or exceeded its threshold).",
		func() float64 { return float64(db.session.Slow.Fired()) })
	if cfg.DataDir != "" {
		if err := db.recover(s, eng); err != nil {
			db.closeLogs()
			return nil, err
		}
	}
	if cfg.CheckpointInterval > 0 {
		if cfg.DataDir == "" {
			return nil, fmt.Errorf("taurus: CheckpointInterval requires DataDir")
		}
		db.ckStop = make(chan struct{})
		db.ckDone = make(chan struct{})
		go db.checkpointLoop(cfg.CheckpointInterval)
	}
	obs.RegisterBuildInfo(reg)
	// The master's own monitor: write-pipeline invariants plus the
	// background checkpointer's sticky error.
	db.health = health.NewMonitor("frontend", "frontend",
		health.MonitorOptions{Events: db.events, Metrics: reg})
	s.RegisterHealth(db.health)
	db.health.AddProbe(db.checkpointerProbe())
	// Heartbeats: the master pings every embedded storage node on the
	// same InProc fabric requests use, so the detector measures exactly
	// "can this node answer an RPC".
	if cfg.HeartbeatInterval >= 0 {
		hb := cfg.HeartbeatInterval
		if hb == 0 {
			hb = time.Second
		}
		db.det = health.NewDetector(hb, cfg.SuspectThreshold, db.events, reg)
		for _, n := range db.logNames {
			db.det.Track(n, "logstore")
		}
		for _, n := range db.psNames {
			db.det.Track(n, "pagestore")
		}
		db.hbStop = make(chan struct{})
		db.hbDone = make(chan struct{})
		go func() {
			defer close(db.hbDone)
			cluster.RunHealthPinger(tr, db.det, "frontend", db.hbStop, cluster.PingerOptions{})
		}()
	}
	return db, nil
}

// checkpointerProbe reports the background checkpointer's state: its
// failure is sticky (the loop exits), so without this check a wedged
// checkpointer is invisible until Close.
func (db *DB) checkpointerProbe() health.Probe {
	return func() health.Check {
		const name, rb = "frontend.checkpointer", "RB-CHECKPOINTER"
		if db.cfg.CheckpointInterval <= 0 {
			return health.Checkf(name, rb, health.StatusOK, nil,
				"background checkpointer disabled")
		}
		db.ckMu.Lock()
		err := db.ckErr
		lsn := db.lastCkptLSN
		db.ckMu.Unlock()
		ev := map[string]string{"last_ckpt_lsn": fmt.Sprintf("%d", lsn)}
		if err != nil {
			ev["error"] = err.Error()
			return health.Checkf(name, rb, health.StatusCritical, ev,
				"checkpointer stopped on sticky error: %v", err)
		}
		return health.Checkf(name, rb, health.StatusOK, ev,
			"checkpointing every %s", db.cfg.CheckpointInterval)
	}
}

// OpenReplica attaches a read-only frontend to a running master's
// storage cluster (cfg.Master): the replica bootstraps its catalog and
// B+ tree roots from the master's latest checkpoint meta (or, without
// one, from the full log), then tails the Log Stores to advance a
// replica-visible LSN and serves SELECTs from the shared Page Stores at
// that snapshot. DML and DDL are rejected; writes go to the master and
// become visible on the replica after catch-up (bounded lag). The
// master's SAL pushes LSN-advance notifications so the replica usually
// trails by one refresh cycle, with ReplicaRefreshInterval as the poll
// fallback. Close the replica before closing its master.
func OpenReplica(cfg Config) (*DB, error) {
	m := cfg.Master
	if m == nil {
		return nil, fmt.Errorf("taurus: OpenReplica requires Config.Master")
	}
	if m.rep != nil {
		return nil, fmt.Errorf("taurus: cannot open a replica of a replica")
	}
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 4096
	}
	// Each replica gets its own registry (its own /metrics page in a TCP
	// deployment); the name labels its series so fleets of replicas stay
	// distinguishable when scraped into one place.
	reg := obs.NewRegistry()
	repName := fmt.Sprintf("replica-%d", m.repSeq.Add(1))
	repTracer := obs.NewTracer(repName, cfg.TraceSampleRate, 0)
	repEvents := obs.NewEventRing(0)
	// loadCkpt rebases the replica on the master's latest checkpoint when
	// log GC overran a detached tail: re-attach DDL the replica missed
	// (catalog entries plus current roots), advance the transaction-ID
	// allocator past everything the checkpoint covers, and hand back the
	// checkpoint watermark as the new tail position. repEng/repSession
	// are assigned below, before the replica's tailer starts.
	var repEng *engine.Engine
	var repSession *sql.Session
	loadCkpt := func() (uint64, error) {
		if m.meta == nil || repEng == nil {
			return 0, nil
		}
		meta, err := m.meta.LoadMeta()
		if err != nil || meta == nil {
			return 0, err
		}
		rootBy := make(map[uint64]engine.RootRecord, len(meta.Roots))
		for _, rt := range meta.Roots {
			rootBy[rt.IndexID] = engine.RootRecord{IndexID: rt.IndexID, PageID: rt.PageID, Level: rt.Level}
		}
		var analyzed []string
		for _, enc := range meta.Catalog {
			entry, err := wal.DecodeCatalog(enc)
			if err != nil {
				continue
			}
			rt, ok := rootBy[entry.IndexID]
			if !ok {
				continue
			}
			if repEng.HasIndex(entry.IndexID) {
				// Known index — but its root may have split while we
				// were detached.
				repEng.AdvanceRoot(rt.IndexID, rt.PageID, rt.Level)
				continue
			}
			switch entry.Kind {
			case wal.CatalogCreateTable:
				if err := repEng.AttachTable(entry, rt); err != nil {
					return 0, err
				}
				analyzed = append(analyzed, entry.Table)
			case wal.CatalogCreateIndex:
				if err := repEng.AttachIndex(entry, rt); err != nil {
					return 0, err
				}
			}
		}
		repEng.Txm().Advance(meta.MaxTrxID)
		for _, table := range analyzed {
			// Best effort: a failed stats refresh leaves defaults, it
			// must not abort the resync.
			repSession.Cat.Analyze(table)
		}
		return meta.AppliedLSN, nil
	}
	rep, err := replica.New(replica.Config{
		Transport: m.tr, Tenant: 1,
		LogStores: m.logNames, PageStores: m.psNames,
		ReplicationFactor: m.cfg.ReplicationFactor,
		PagesPerSlice:     m.cfg.PagesPerSlice,
		Plugin:            pagestore.PluginInnoDB,
		RefreshInterval:   cfg.ReplicaRefreshInterval,
		Metrics:           reg,
		Name:              repName,
		Tracer:            repTracer,
		Events:            repEvents,
		Subscribe:         !cfg.ReplicaPullTail,
		Node:              repName,
		LoadCheckpoint:    loadCkpt,

		DisableLeastLoadedReads: cfg.DisableScanRouting,
	})
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(engine.Config{
		ReadView: rep, PoolPages: cfg.PoolPages,
		NDPMaxPagesLookAhead: cfg.NDPMaxPagesLookAhead,
		ScanParallelism:      cfg.ScanParallelism,
		Tracer:               repTracer,
		Events:               repEvents,
	})
	if err != nil {
		return nil, err
	}
	eng.RegisterMetrics(reg, repName)
	eng.Pool().RegisterMetrics(reg, repName)
	db := &DB{cfg: cfg, eng: eng, tr: m.tr, rep: rep, master: m,
		logNames: m.logNames, psNames: m.psNames,
		obsReg: reg, rpc: m.rpc, repName: repName,
		tracer: repTracer, events: repEvents}
	// A replica's trace queries see its own spans plus the shared storage
	// components' — tailing rpc spans land on the shared transport's
	// collector, server spans on the Log/Page Store collectors.
	db.tracers = append([]*obs.Tracer{repTracer}, m.tracers...)
	db.session = sql.NewSession(eng)
	db.session.NDP = !cfg.DisableNDP
	db.session.ReadOnly = true
	db.session.Slow = obs.NewSlowOpLog(cfg.SlowOpThreshold, cfg.SlowOpLogger)
	db.session.Tracer = repTracer
	reg.CounterFunc("taurus_slow_ops_fired_total",
		"Statements the slow-op log fired on (met or exceeded its threshold).",
		func() float64 { return float64(db.session.Slow.Fired()) })
	obs.RegisterBuildInfo(reg)
	rm := health.NewMonitor(repName, "replica",
		health.MonitorOptions{Events: repEvents, Metrics: reg})
	rep.RegisterHealth(rm)
	rep.SetHealth(rm)
	db.health = rm
	rep.Bind(eng, func(table string) {
		// A table the master created after the replica opened: refresh
		// its optimizer statistics so NDP decisions see it.
		db.session.Cat.Analyze(table)
	})
	// Bootstrap the catalog from the master's latest checkpoint meta:
	// every record at or below its watermark is in a durable slice
	// checkpoint (hence applied), so the tail starts there. Without a
	// meta (in-memory master, or none written yet) the replica tails
	// the log from the beginning and attaches DDL as it streams past.
	start := uint64(0)
	if m.meta != nil {
		meta, err := m.meta.LoadMeta()
		if err != nil {
			return nil, err
		}
		if meta != nil {
			base := &engine.RecoveryBase{
				Catalog: meta.Catalog,
				MaxLSN:  meta.MaxLSN, MaxTrxID: meta.MaxTrxID,
				MaxPageID: meta.MaxPageID, MaxIndexID: meta.MaxIndexID,
			}
			for _, r := range meta.Roots {
				base.Roots = append(base.Roots, engine.RootRecord{
					IndexID: r.IndexID, PageID: r.PageID, Level: r.Level,
				})
			}
			if _, err := eng.RecoverFrom(base, nil); err != nil {
				return nil, fmt.Errorf("taurus: replica bootstrap: %w", err)
			}
			start = meta.AppliedLSN
		}
	}
	// Register the replica's handler before the tailer starts so no
	// advance (pull mode) or stream frame (push mode) is missed. Pull
	// replicas subscribe to the SAL's per-replica LSNAdvance notifier;
	// push replicas instead arm the SAL's frontier relay, whose cost is
	// O(#LogStores) per advance regardless of replica count.
	m.tr.Register(db.repName, rep)
	repEng, repSession = eng, db.session
	if cfg.ReplicaPullTail {
		m.eng.SAL().RegisterReplica(db.repName)
	} else {
		m.eng.SAL().AddFrontierWatch()
	}
	unregister := func() {
		if cfg.ReplicaPullTail {
			m.eng.SAL().UnregisterReplica(db.repName)
		} else {
			m.eng.SAL().RemoveFrontierWatch()
		}
		m.tr.Unregister(db.repName)
	}
	// Catch up to everything the master had committed when we opened —
	// the SAL's acknowledged commit watermark, not the per-store max
	// (a store can hold batches whose sibling acks are still in
	// flight, which the visible LSN is gated never to pass): a SELECT
	// issued right after OpenReplica sees every acknowledged commit.
	if err := rep.Start(start, m.eng.SAL().DurableLSN()); err != nil {
		unregister()
		return nil, fmt.Errorf("taurus: replica catch-up: %w", err)
	}
	// Optimizer statistics for the bootstrapped tables (the master's
	// ANALYZE-equivalent on restart).
	for _, name := range eng.Tables() {
		if _, err := db.session.Cat.Analyze(name); err != nil {
			db.Close()
			return nil, fmt.Errorf("taurus: analyzing replicated table %s: %w", name, err)
		}
	}
	// The replica answers MsgPing on the shared transport, so the
	// master's failure detector can watch it like any storage peer.
	m.det.Track(repName, "replica")
	return db, nil
}

// IsReplica reports whether this frontend is a read replica.
func (db *DB) IsReplica() bool { return db.rep != nil }

// ReplicaStats reports a replica's tailing state: visible LSN, lag in
// records and bytes, refresh/notification counts, pages invalidated,
// and DDL attached. Zero value on a master.
func (db *DB) ReplicaStats() replica.Stats {
	if db.rep == nil {
		return replica.Stats{}
	}
	return db.rep.Stats()
}

// recover rebuilds the deployment from DataDir. With a valid checkpoint
// set, recovery is O(log tail): the Page Stores already restored their
// slice checkpoints, the frontend's meta checkpoint supplies the
// catalog, B+ tree roots, and allocator marks, and only log records
// above the checkpoint watermark are replayed through the Page Store
// apply path. Without one (or when any slice checkpoint failed
// validation), the whole surviving log is replayed as in PR 1 —
// restored slices skip their prefix idempotently.
func (db *DB) recover(s *sal.SAL, eng *engine.Engine) error {
	meta, err := db.meta.LoadMeta()
	if err != nil {
		return err
	}
	after := uint64(0)
	var base *engine.RecoveryBase
	if meta != nil {
		base = &engine.RecoveryBase{
			Catalog: meta.Catalog,
			MaxLSN:  meta.MaxLSN, MaxTrxID: meta.MaxTrxID,
			MaxPageID: meta.MaxPageID, MaxIndexID: meta.MaxIndexID,
		}
		for _, r := range meta.Roots {
			base.Roots = append(base.Roots, engine.RootRecord{
				IndexID: r.IndexID, PageID: r.PageID, Level: r.Level,
			})
		}
		// The tail starts at the checkpoint watermark — unless a slice
		// checkpoint was damaged, in which case its slice must be
		// rebuilt from the full log (intact slices skip the prefix
		// idempotently; RecoverFrom dedupes catalog overlap). A damaged
		// checkpoint also stops seeding the GC watermark: records the
		// damaged file was the only durable copy of must stay in the
		// log until a fresh checkpoint covers them again.
		if db.summary.CorruptCheckpoints == 0 {
			after = meta.AppliedLSN
			db.lastCkptLSN = meta.AppliedLSN
		}
		db.summary.CheckpointLSN = meta.AppliedLSN
	}
	// The Log Stores are written in triplicate and acknowledged
	// synchronously, so they normally agree; after a crash the most
	// complete replica wins: most records first (a replica that tore a
	// mid-log batch in an earlier crash has fewer, even if later writes
	// advanced its LSN), then highest durable LSN (Taurus: "the master
	// finds the Log Store with the highest LSN"). Lagging replicas then
	// catch up from the winner's persistent log so the triplicate set
	// converges again; hole repair below a replica's durable watermark
	// is tracked in ROADMAP.
	best := db.logs[0]
	for _, ls := range db.logs[1:] {
		if ls.Len() > best.Len() ||
			(ls.Len() == best.Len() && ls.DurableLSN() > best.DurableLSN()) {
			best = ls
		}
	}
	for _, ls := range db.logs {
		if ls == best || !ls.Durable() ||
			(ls.DurableLSN() >= best.DurableLSN() && ls.PendingHoles() == 0) {
			continue
		}
		if _, err := ls.CatchUp(best); err != nil {
			return fmt.Errorf("taurus: log replica catch-up: %w", err)
		}
	}
	recs := best.ReadFrom(after)
	// Per-slice lanes can leave the log non-prefix across a crash: drop
	// dead-epoch zombies and any freshly-torn multi-lane tail (none of
	// it was ever acknowledged). Without a checkpoint meta no GC can
	// ever have run, so the scan is anchored at LSN 0 and a missing
	// leading window is detected too.
	anchored := after > 0 || meta == nil
	recs, newVoidFrom, voided := voidTornLanes(recs, after, anchored)
	db.summary.TailRecords = len(recs)
	db.summary.VoidedRecords = voided
	// A sibling Log Store may hold unacknowledged lane windows ABOVE
	// the best replica's durable LSN (best has the most records, not
	// necessarily the highest LSN). The allocator must resume above
	// every replica's content — a fresh record reusing a zombie's LSN
	// would be silently dropped by that store's duplicate filter while
	// still being acknowledged — and the zombie range joins the dead
	// epoch the recovery barrier declares. Acknowledged records are on
	// every store, so everything above best's durable LSN is provably
	// unacknowledged.
	maxDurable := uint64(0)
	for _, ls := range db.logs {
		if d := ls.DurableLSN(); d > maxDurable {
			maxDurable = d
		}
	}
	if maxDurable > best.DurableLSN() {
		zombieFrom := best.DurableLSN() + 1
		if newVoidFrom == 0 || zombieFrom < newVoidFrom {
			newVoidFrom = zombieFrom
		}
	}
	if db.summary.CorruptCheckpoints > 0 {
		// The damaged slice can only be rebuilt from the full log. If
		// watermark GC already collected the prefix (LSNs start past 1),
		// that history is gone — fail loudly rather than silently serve
		// a replica missing acknowledged rows. Repairing from a sibling
		// replica's checkpoint is a ROADMAP item.
		if (len(recs) == 0 && meta != nil && meta.AppliedLSN > 0) ||
			(len(recs) > 0 && recs[0].LSN > 1) {
			return fmt.Errorf("taurus: %d corrupt slice checkpoint(s) and the log prefix below LSN %d was garbage-collected; slice unrecoverable from this node's disk",
				db.summary.CorruptCheckpoints, firstLSN(recs))
		}
	}
	if len(recs) == 0 && base == nil && newVoidFrom == 0 && maxDurable == 0 {
		return nil
	}
	// Resume the LSN allocator first: recovery may itself log records
	// (a catalog entry whose root page never made it to disk gets a
	// fresh, empty root).
	resume := maxDurable
	if meta != nil && meta.MaxLSN > resume {
		resume = meta.MaxLSN
	}
	s.ResumeLSN(resume)
	if newVoidFrom > 0 {
		// A freshly-torn tail was discarded: log a recovery barrier
		// declaring [newVoidFrom, barrierLSN) dead, BEFORE anything
		// else is logged. Every future commit's prefix wait covers the
		// barrier, so by the time any new record is acknowledged the
		// next recovery is guaranteed to see the explanation and keep
		// the new records while still dropping the zombies.
		db.events.Record(obs.EventCatalogBarrier,
			"recovery: torn tail, barrier voids LSNs from %d (%d records dropped)",
			newVoidFrom, voided)
		if _, err := s.Write(&wal.Record{
			Type: wal.TypeCatalog,
			Payload: (&wal.CatalogEntry{
				Kind: wal.CatalogBarrier, IndexID: newVoidFrom,
			}).EncodeCatalog(nil),
		}); err != nil {
			return fmt.Errorf("taurus: logging recovery barrier: %w", err)
		}
	}
	if err := s.Replay(recs); err != nil {
		return fmt.Errorf("taurus: replaying %d records: %w", len(recs), err)
	}
	st, err := eng.RecoverFrom(base, recs)
	if err != nil {
		return fmt.Errorf("taurus: recovering catalog: %w", err)
	}
	db.recovered = st
	// Refresh optimizer statistics so NDP decisions see the recovered
	// data (the paper's ANALYZE-equivalent runs on restart).
	for _, name := range eng.Tables() {
		if _, err := db.session.Cat.Analyze(name); err != nil {
			return fmt.Errorf("taurus: analyzing recovered table %s: %w", name, err)
		}
	}
	return nil
}

// firstLSN returns the first record's LSN (0 for an empty slice).
func firstLSN(recs []wal.Record) uint64 {
	if len(recs) == 0 {
		return 0
	}
	return recs[0].LSN
}

// voidRange is one dead write epoch: [from, to) in LSN space.
type voidRange struct{ from, to uint64 }

func (v voidRange) contains(lsn uint64) bool { return lsn >= v.from && lsn < v.to }

// voidTornLanes filters a recovered log for replay. Per-slice write
// lanes append their windows to the Log Stores in independent streams
// that interleave in LSN space, so a crash can leave the log non-prefix:
// a later lane's window durable, an earlier lane's window lost. Records
// above such a hole were never acknowledged — the commit watermark is an
// LSN prefix and cannot pass a missing record — but replaying them
// without their lost siblings could half-apply a multi-page operation.
//
// Two mechanisms cooperate:
//   - CatalogBarrier records, logged by an earlier recovery, declare
//     [VoidFrom, barrierLSN) a dead epoch; records inside (except other
//     barriers, which must keep explaining their own gaps) are dropped.
//   - Any remaining gap not fully explained by a dead epoch marks a
//     fresh torn tail: everything from the gap on is dropped, and the
//     caller must log a new barrier at voidFrom before acknowledging
//     anything, so the next recovery can tell the surviving zombies
//     from live records.
//
// LSNs are allocated densely and every record is logged, so within the
// retained log (GC trims only a prefix) a gap always means loss. With
// anchored set, records are expected to resume exactly at after+1 —
// recovery passes after > 0 when starting from a checkpoint, and
// after == 0 with anchored when no checkpoint meta exists (GC cannot
// have run, so a leading gap is loss too). Unanchored (corrupt-meta
// fallback), a leading gap is indistinguishable from a GC'd prefix and
// the scan starts at the first record.
func voidTornLanes(recs []wal.Record, after uint64, anchored bool) (kept []wal.Record, voidFrom uint64, voided int) {
	var epochs []voidRange
	for i := range recs {
		rec := &recs[i]
		if rec.Type != wal.TypeCatalog {
			continue
		}
		if entry, err := wal.DecodeCatalog(rec.Payload); err == nil && entry.Kind == wal.CatalogBarrier {
			epochs = append(epochs, voidRange{from: entry.IndexID, to: rec.LSN})
		}
	}
	dead := func(lsn uint64) bool {
		for _, e := range epochs {
			if e.contains(lsn) {
				return true
			}
		}
		return false
	}
	kept = recs[:0:0]
	prev := after
	for i := range recs {
		rec := &recs[i]
		if prev != 0 || anchored {
			for missing := prev + 1; missing < rec.LSN; missing++ {
				if !dead(missing) {
					// Unexplained hole: everything from here on is a
					// freshly-torn multi-lane tail.
					return kept, missing, len(recs) - len(kept)
				}
			}
		}
		prev = rec.LSN
		isBarrier := false
		if rec.Type == wal.TypeCatalog {
			if entry, err := wal.DecodeCatalog(rec.Payload); err == nil && entry.Kind == wal.CatalogBarrier {
				isBarrier = true
			}
		}
		if !isBarrier && dead(rec.LSN) {
			voided++
			continue // zombie from a dead epoch
		}
		kept = append(kept, *rec)
	}
	return kept, 0, voided
}

// CheckpointResult reports one Checkpoint call.
type CheckpointResult struct {
	// Watermark is the cluster LSN the checkpoint set now covers:
	// every record at or below it is in a durable slice checkpoint on
	// every replica and the catalog is in the durable meta checkpoint.
	Watermark uint64
	// SlicesWritten/SlicesClean/PagesWritten/BytesWritten total the
	// Page Store side; clean slices were already persisted at their
	// applied LSN and were skipped.
	SlicesWritten int
	SlicesClean   int
	PagesWritten  int
	BytesWritten  int64
}

// Checkpoint persists the deployment's state so recovery no longer
// needs the full log: every Page Store writes its dirty slices (page
// images + applied LSN, atomically per slice), then the frontend writes
// its meta checkpoint (catalog entries, B+ tree roots, allocator
// high-water marks, and the cluster watermark aggregated by the SAL).
// It does not truncate the log — TruncateLogs (or the background
// checkpointer) does that against the durable watermark.
func (db *DB) Checkpoint() (*CheckpointResult, error) {
	if db.meta == nil {
		return nil, fmt.Errorf("taurus: Checkpoint requires Config.DataDir")
	}
	db.ckMu.Lock()
	defer db.ckMu.Unlock()
	// Snapshot barrier: everything executed up to this point must be
	// durable and applied before the slices snapshot — but new writes
	// keep flowing. (A full Flush waits for pending == 0, a moment that
	// may never come under sustained writers, starving the background
	// checkpointer into full-replay recoveries.)
	if err := db.eng.SAL().Barrier(); err != nil {
		return nil, err
	}
	res := &CheckpointResult{}
	for _, ps := range db.stores {
		st, err := ps.Checkpoint()
		if err != nil {
			return nil, err
		}
		res.SlicesWritten += st.SlicesWritten
		res.SlicesClean += st.SlicesClean
		res.PagesWritten += st.Pages
		res.BytesWritten += st.Bytes
	}
	// The watermark comes from the SAL's cluster-wide aggregation (the
	// same query path a TCP deployment uses), after the slice writes so
	// it reflects them.
	w, err := db.eng.SAL().GCWatermark()
	if err != nil {
		return nil, err
	}
	res.Watermark = w
	base := db.eng.CheckpointBase()
	meta := &pstore.Meta{
		AppliedLSN: w,
		MaxLSN:     db.eng.SAL().CurrentLSN(),
		MaxTrxID:   base.MaxTrxID,
		MaxPageID:  base.MaxPageID,
		MaxIndexID: base.MaxIndexID,
		Catalog:    base.Catalog,
	}
	for _, r := range base.Roots {
		meta.Roots = append(meta.Roots, pstore.Root{IndexID: r.IndexID, PageID: r.PageID, Level: r.Level})
	}
	if err := db.meta.WriteMeta(meta); err != nil {
		return nil, err
	}
	if w > db.lastCkptLSN {
		db.lastCkptLSN = w
	}
	return res, nil
}

// TruncateLogs garbage-collects the durable log up to the last durably
// checkpointed watermark: records the checkpoint set covers are dropped
// from the Log Stores and sealed segments wholly below them deleted.
// Returns the segments removed across all Log Stores.
func (db *DB) TruncateLogs() (int, error) {
	db.ckMu.Lock()
	w := db.lastCkptLSN
	db.ckMu.Unlock()
	if w == 0 {
		return 0, nil
	}
	// TruncateBelow keeps LSN >= watermark; records ≤ w are covered.
	res, err := db.eng.SAL().TruncateLogs(w + 1)
	if err != nil {
		return res.SegmentsRemoved, err
	}
	return res.SegmentsRemoved, nil
}

// checkpointLoop is the background checkpointer: checkpoint, then GC
// the log against the new durable watermark. A failure is sticky and
// surfaced by Close — durability is not at risk (the log still has
// everything), but the recovery fast path stops advancing.
func (db *DB) checkpointLoop(interval time.Duration) {
	defer close(db.ckDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-db.ckStop:
			return
		case <-t.C:
			if _, err := db.Checkpoint(); err != nil {
				db.ckMu.Lock()
				if db.ckErr == nil {
					db.ckErr = err
				}
				db.ckMu.Unlock()
				return
			}
			if _, err := db.TruncateLogs(); err != nil {
				db.ckMu.Lock()
				if db.ckErr == nil {
					db.ckErr = err
				}
				db.ckMu.Unlock()
				return
			}
		}
	}
}

// closeLogs releases any disk-backed Log Stores (partial-open cleanup
// and DB.Close).
func (db *DB) closeLogs() error {
	var first error
	for _, ls := range db.logs {
		if ls == nil {
			continue
		}
		if err := ls.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close flushes all buffered log records to the storage services and
// releases the Log Stores' on-disk segments. With the background
// checkpointer enabled it also stops it and takes a final checkpoint,
// so the next Open recovers from the checkpoint with an empty log tail.
// The database must not be used afterwards. Close is not required for
// durability — every acknowledged statement already survived — but it
// makes the final buffered (unacknowledged) records durable too.
func (db *DB) Close() error {
	if db.rep != nil {
		// Replica: stop the tailer and drop the master's subscription
		// and transport registration (a master that cycles replicas
		// must not accumulate dead handlers). The shared storage nodes
		// belong to the master. rep.Close runs before the transport
		// unregistration so a push replica's stream detach and version
		// pin clears still reach the storage nodes.
		if db.cfg.ReplicaPullTail {
			db.master.eng.SAL().UnregisterReplica(db.repName)
		} else {
			db.master.eng.SAL().RemoveFrontierWatch()
		}
		db.rep.Close()
		db.master.tr.Unregister(db.repName)
		db.master.det.Forget(db.repName)
		return nil
	}
	var firstErr error
	if db.hbStop != nil {
		close(db.hbStop)
		<-db.hbDone
		// Close must stay idempotent (callers defer it defensively).
		db.hbStop = nil
	}
	if db.ckStop != nil {
		close(db.ckStop)
		<-db.ckDone
		db.ckMu.Lock()
		firstErr = db.ckErr
		db.ckMu.Unlock()
		if firstErr == nil {
			// Final checkpoint on clean shutdown.
			if _, err := db.Checkpoint(); err != nil {
				firstErr = err
			} else if _, err := db.TruncateLogs(); err != nil {
				firstErr = err
			}
		}
	}
	// SAL.Close drains the write pipeline (everything staged becomes
	// durable and applied) and stops its goroutines.
	if err := db.eng.SAL().Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := db.closeLogs(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		// Going down with an error: dump the flight recorder so the
		// structural events leading up to it survive in the log.
		logger := db.cfg.SlowOpLogger
		if logger == nil {
			logger = log.Default()
		}
		db.events.Dump(logger)
	}
	return firstErr
}

// RecoveryStats reports what Open rebuilt from DataDir (zero value for
// a fresh or in-memory database).
func (db *DB) RecoveryStats() engine.RecoveryStats { return db.recovered }

// RecoverySummary reports how Open recovered: checkpoint watermark,
// restored slices/pages, and the log tail replayed on top.
func (db *DB) RecoverySummary() RecoverySummary { return db.summary }

// LogStoreStats returns per-Log-Store node statistics (durable and GC
// watermarks, segment counts, persistent-log counters).
func (db *DB) LogStoreStats() []logstore.NodeStats {
	out := make([]logstore.NodeStats, len(db.logs))
	for i, ls := range db.logs {
		out[i] = ls.NodeStats()
	}
	return out
}

// DurableLSN returns the highest log sequence number acknowledged by
// any of the Log Store replicas (0 for a deployment with nothing
// flushed yet).
func (db *DB) DurableLSN() uint64 {
	var max uint64
	for _, ls := range db.logs {
		if l := ls.DurableLSN(); l > max {
			max = l
		}
	}
	return max
}

// Exec parses and executes one SQL statement (CREATE TABLE, INSERT,
// SELECT, EXPLAIN SELECT).
func (db *DB) Exec(query string) (*Result, error) { return db.session.Exec(query) }

// ExecTraced executes one statement with a forced distributed trace and
// returns the trace ID alongside the result. Fetch the assembled tree with
// TraceSpans — it will contain the frontend's statement root plus, for a
// write, SAL window/append/apply spans and the Log and Page Store server
// spans the propagated context produced on those components.
func (db *DB) ExecTraced(query string) (*Result, uint64, error) {
	return db.session.ExecTraced(query, true)
}

// Tracer returns this frontend's span collector (statement roots, SAL
// pipeline spans, client rpc spans). Its sampling rate is
// Config.TraceSampleRate.
func (db *DB) Tracer() *obs.Tracer { return db.tracer }

// TraceSpans returns every span the deployment collected for a trace ID,
// merged across the embedded components — exactly what a TCP deployment
// assembles by querying each server's /trace/<id>. Render the tree with
// obs.FormatTrace(obs.AssembleTrace(spans)).
func (db *DB) TraceSpans(id uint64) []obs.Span {
	var out []obs.Span
	for _, t := range db.tracers {
		out = append(out, t.Spans(id)...)
	}
	return out
}

// RecentTraces returns up to n recently completed root trace IDs on this
// frontend, newest first.
func (db *DB) RecentTraces(n int) []uint64 { return db.tracer.RecentTraces(n) }

// Events returns this node's flight-recorder contents, oldest first:
// lane promotions and demotions, window seals by reason, checkpoints, log
// GC truncations, replica resyncs, sticky-error poisoning, and catalog
// barriers. The ring is bounded; old events are overwritten.
func (db *DB) Events() []obs.Event { return db.events.Events() }

// EventRing returns the flight recorder itself (for HTTP exposure:
// EventRing().Handler() serves GET /events).
func (db *DB) EventRing() *obs.EventRing { return db.events }

// Health returns this node's check monitor: the backing for /healthz,
// /ready, and /health on a server.
func (db *DB) Health() *health.Monitor { return db.health }

// HealthReport evaluates and returns this node's own health report.
func (db *DB) HealthReport() health.Report { return db.health.Report() }

// HealthDetector returns the master's failure detector (nil on replicas
// and when Config.HeartbeatInterval is negative). External deployments
// Track additional TCP peers on it; peers observed out-of-band (e.g. a
// TCP pinger in taurus-server) land in the same ClusterHealth view.
func (db *DB) HealthDetector() *health.Detector { return db.det }

// ClusterHealth aggregates this node's own report with the failure
// detector's peer table — the payload of GET /cluster/health.
func (db *DB) ClusterHealth() health.ClusterView {
	node := "frontend"
	if db.rep != nil {
		node = db.repName
	}
	return health.ClusterView{
		Node: node, Time: time.Now(),
		Self:  db.health.Report(),
		Peers: db.det.Snapshot(),
	}
}

// SlowOpsFired counts statements the slow-op log fired on (also exported
// as taurus_slow_ops_fired_total).
func (db *DB) SlowOpsFired() uint64 { return db.session.Slow.Fired() }

// SetNDP toggles near-data processing for subsequent queries.
func (db *DB) SetNDP(enabled bool) { db.session.NDP = enabled }

// NDPEnabled reports the current setting.
func (db *DB) NDPEnabled() bool { return db.session.NDP }

// SetNDPPageThreshold overrides the optimizer's minimum estimated scan
// I/O (in pages) for NDP eligibility — the paper's 10,000-page rule,
// which small embedded datasets usually want lowered.
func (db *DB) SetNDPPageThreshold(pages int64) { db.session.Cat.NDPPageThreshold = pages }

// Engine exposes the storage engine for advanced (typed) access: bulk
// loads, explicit scans, custom plans.
func (db *DB) Engine() *engine.Engine { return db.eng }

// ClearBufferPool drops all cached pages, so the next scan reads from
// the Page Stores ("cold" start, as the paper's experiments begin).
func (db *DB) ClearBufferPool() { db.eng.Pool().Clear() }

// NetworkStats returns cumulative compute↔storage traffic counters.
func (db *DB) NetworkStats() cluster.CountersSnapshot { return db.tr.Stats.Snapshot() }

// EngineStats returns cumulative SQL-node work counters.
func (db *DB) EngineStats() engine.MetricsSnapshot { return db.eng.Metrics.Snapshot() }

// WritePathStats returns the SAL's group-commit pipeline counters:
// windows flushed, backpressure stalls, commit/apply waits, current
// in-flight depth, the durable watermark, hot-slice promotions, and the
// per-lane breakdown (windows sealed by reason, adaptive flush
// threshold, and each assigned slice's apply lag) — enough to confirm
// from the stats endpoint that lanes operate independently.
func (db *DB) WritePathStats() sal.PipelineStats {
	if db.eng.SAL() == nil {
		return sal.PipelineStats{} // replica: no write path
	}
	return db.eng.SAL().Stats()
}

// BufferPoolStats returns per-shard buffer pool counters (residency,
// hits/misses, evictions, singleflight-shared fetches).
func (db *DB) BufferPoolStats() []buffer.ShardStats {
	return db.eng.Pool().ShardStatsSnapshot()
}

// PageStoreStats returns per-store counters (log records applied, NDP
// pages processed and skipped, ...).
func (db *DB) PageStoreStats() []pagestore.StatsSnapshot {
	out := make([]pagestore.StatsSnapshot, len(db.stores))
	for i, ps := range db.stores {
		out[i] = ps.Snapshot()
	}
	return out
}

// PageStoreNodes returns each embedded Page Store's full node view
// (counters plus descriptor-cache hit/miss totals, NDP queue depth,
// LSN watermarks, and per-slice state) — what a TCP deployment serves
// from each store's /stats endpoint.
func (db *DB) PageStoreNodes() []pagestore.NodeStats {
	out := make([]pagestore.NodeStats, len(db.stores))
	for i, ps := range db.stores {
		out[i] = ps.NodeStats()
	}
	return out
}

// SetScanParallelism resizes the partitioned NDP scan worker pool at
// runtime (0 = GOMAXPROCS, 1 = serial).
func (db *DB) SetScanParallelism(n int) { db.eng.SetScanParallelism(n) }

// SetScanRouting toggles least-loaded scan routing (false = plain
// round-robin) on this frontend's read path.
func (db *DB) SetScanRouting(leastLoaded bool) {
	if db.rep != nil {
		db.rep.SetLeastLoadedReads(leastLoaded)
		return
	}
	db.eng.SAL().SetLeastLoadedReads(leastLoaded)
}

// ScanRouting snapshots this frontend's scan read router: per-slice
// sub-batches routed (scan_routed), re-sent after a failure or
// straggler hedge (scan_retried, scan_hedged), and the per-store
// in-flight/EWMA-latency trackers behind the least-loaded pick.
func (db *DB) ScanRouting() sal.RouterStats {
	if db.rep != nil {
		return db.rep.RouterStats()
	}
	return db.eng.SAL().RouterStats()
}

// Metrics returns the deployment's metrics registry. A master's registry
// covers every embedded component (SAL write-path stages, Log and Page
// Stores, buffer pool, engine, per-MsgType RPC traffic); a replica's
// covers its own tailing, engine, and buffer pool. Serve it over HTTP
// with Metrics().Handler() or render it with WritePrometheus.
func (db *DB) Metrics() *obs.Registry { return db.obsReg }

// RPCStats returns per-message-type transport traffic (request counts,
// bytes, errors, latency quantiles), keyed by MsgType name. A replica
// reports its master's transport, which it shares.
func (db *DB) RPCStats() map[string]cluster.RPCTypeStats { return db.rpc.Snapshot() }
